package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/workload"
)

// TestLoadConcurrentMixed is the service's acceptance load test (run under
// -race in CI): hundreds of concurrent requests over a mixed set of
// instances, verifying that every served cost equals core.Solve's, that each
// distinct instance is solved exactly once (everything else is a cache hit
// or a coalesced waiter), that deadline-exceeded requests get 504 with the
// solver goroutines actually stopped, and that graceful shutdown drains
// accepted requests.
func TestLoadConcurrentMixed(t *testing.T) {
	const (
		nInstances = 20
		nRequests  = 240
	)
	s := New(Config{
		MaxConcurrent: 8,
		MaxPending:    256,
		Logger:        testLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()
	defer s.Close()
	defer hs.Close()

	baseGoroutines := runtime.NumGoroutine()

	// A mixed instance pool, solved locally for the expected costs.
	instances := make([]*core.Problem, nInstances)
	wantCost := make([]uint64, nInstances)
	for i := range instances {
		seed := int64(100 + i)
		switch i % 4 {
		case 0:
			instances[i] = workload.MedicalDiagnosis(seed, 7+i%3)
		case 1:
			instances[i] = workload.Logistics(seed, 7+i%3, 3)
		case 2:
			instances[i] = workload.FaultLocation(seed, 7+i%3, 2)
		default:
			instances[i] = workload.Random(seed, 8, 6, 4)
		}
		sol, err := core.Solve(instances[i])
		if err != nil {
			t.Fatal(err)
		}
		wantCost[i] = sol.Cost
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		ok504, okOK, ok422 atomic.Int64
		wg                 sync.WaitGroup
	)
	engines := []string{"seq", "parallel", "seq", "parallel", "lockstep"}
	for r := 0; r < nRequests; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			switch {
			case r%60 == 58:
				// Oversized: valid per core (K <= core.MaxK) but over the
				// server's K budget — rejected at admission with 422.
				big := workload.Random(1, 22, 4, 4)
				_, status := postSolveClient(t, client, url, "", instanceJSONQuiet(big))
				if status == http.StatusUnprocessableEntity {
					ok422.Add(1)
				} else {
					t.Errorf("req %d: oversized got %d, want 422", r, status)
				}
			case r%60 == 59:
				// A huge instance with a tiny deadline: must 504 promptly.
				big := workload.Random(2, 20, 40, 4)
				start := time.Now()
				_, status := postSolveClient(t, client, url, "?engine=parallel&timeout_ms=40", instanceJSONQuiet(big))
				if status != http.StatusGatewayTimeout {
					t.Errorf("req %d: big instance got %d, want 504", r, status)
					return
				}
				if d := time.Since(start); d > 5*time.Second {
					t.Errorf("req %d: 504 took %v, deadline not enforced", r, d)
				}
				ok504.Add(1)
			default:
				i := r % nInstances
				p := permuted(rng, instances[i])
				engine := engines[r%len(engines)]
				if engine == "lockstep" && p.K > 8 {
					engine = "seq" // keep the simulated machine small under -race
				}
				sr, status := postSolveClient(t, client, url, "?engine="+engine, instanceJSONQuiet(p))
				if status != http.StatusOK {
					t.Errorf("req %d (%s): status %d", r, engine, status)
					return
				}
				if !sr.Adequate || sr.Cost == nil || *sr.Cost != wantCost[i] {
					t.Errorf("req %d: cost %v, want %d", r, sr.Cost, wantCost[i])
					return
				}
				okOK.Add(1)
			}
		}()
	}
	wg.Wait()

	wantOK := int64(nRequests - nRequests/60*2)
	if okOK.Load() != wantOK || ok504.Load() != int64(nRequests/60) || ok422.Load() != int64(nRequests/60) {
		t.Fatalf("outcomes: %d ok (want %d), %d timeouts, %d oversize",
			okOK.Load(), wantOK, ok504.Load(), ok422.Load())
	}

	// Exactly one solver run per distinct admissible instance: every other
	// successful request was a cache hit or coalesced onto the in-flight
	// solve. The timed-out big instance never caches, so its repeats add at
	// most n504 extra runs (or coalesced waiters, when they overlapped).
	m := s.Metrics()
	n504 := int64(nRequests / 60)
	solves := m.Solves.Load()
	if solves < nInstances || solves > nInstances+n504 {
		t.Fatalf("solver ran %d times for %d distinct instances (max %d)",
			solves, nInstances, nInstances+n504)
	}
	hits := m.CacheHits.Load() + m.Coalesced.Load()
	if minHits := wantOK - int64(nInstances); hits < minHits || hits > minHits+n504 {
		t.Fatalf("cache hits+coalesced = %d, want %d..%d", hits, minHits, minHits+n504)
	}
	if m.Timeouts.Load() != n504 {
		t.Fatalf("timeouts = %d, want %d", m.Timeouts.Load(), n504)
	}

	// The timed-out sweeps' worker goroutines must actually stop.
	client.CloseIdleConnections()
	waitForGoroutines(t, baseGoroutines+12)

	// Graceful shutdown: requests accepted before Shutdown complete with
	// 200; Shutdown returns only after they drain.
	slow := make([]*core.Problem, 6)
	slowCost := make([]uint64, len(slow))
	for i := range slow {
		slow[i] = workload.Random(int64(900+i), 15, 24, 8)
		sol, err := core.Solve(slow[i])
		if err != nil {
			t.Fatal(err)
		}
		slowCost[i] = sol.Cost
	}
	missesBefore := m.CacheMisses.Load()
	var drainWG sync.WaitGroup
	var drained atomic.Int64
	for i := range slow {
		i := i
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			sr, status := postSolveClient(t, client, url, "?engine=parallel", instanceJSONQuiet(slow[i]))
			if status != http.StatusOK || *sr.Cost != slowCost[i] {
				t.Errorf("drain req %d: status %d", i, status)
				return
			}
			drained.Add(1)
		}()
	}
	// Shut down only once every request has been accepted by the handler
	// (each distinct drain instance registers one cache miss).
	accepted := time.Now().Add(10 * time.Second)
	for m.CacheMisses.Load() < missesBefore+int64(len(slow)) {
		if time.Now().After(accepted) {
			t.Fatal("drain requests never reached the handler")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	drainWG.Wait()
	if drained.Load() != int64(len(slow)) {
		t.Fatalf("only %d/%d in-flight requests drained", drained.Load(), len(slow))
	}
	s.Close()
}

// waitForGoroutines polls until the process goroutine count falls to the
// limit, failing after a generous deadline — the check that cancelled
// sweeps do not leak their worker pools.
func waitForGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still alive (limit %d)\n%s",
				runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

func instanceJSONQuiet(p *core.Problem) []byte {
	var buf bytes.Buffer
	if err := instio.Write(&buf, p, ""); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func postSolveClient(t *testing.T, client *http.Client, url, query string, body []byte) (*SolveResponse, int) {
	t.Helper()
	resp, err := client.Post(url+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Errorf("post: %v", err)
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Errorf("decode: %v", err)
		return nil, resp.StatusCode
	}
	return &sr, resp.StatusCode
}
