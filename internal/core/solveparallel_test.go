package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSolveParallelMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(7) + 2 // 2..8
		p := randomProblem(rng, k, rng.Intn(10)+2)
		seq, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 0} {
			par, err := SolveParallel(p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Cost != seq.Cost || par.Ops != seq.Ops {
				t.Fatalf("trial %d workers %d: cost/ops %d/%d vs %d/%d",
					trial, workers, par.Cost, par.Ops, seq.Cost, seq.Ops)
			}
			for s := range seq.C {
				if par.C[s] != seq.C[s] {
					t.Fatalf("trial %d: C[%b] differs", trial, s)
				}
				if par.Choice[s] != seq.Choice[s] {
					t.Fatalf("trial %d: Choice[%b] differs (%d vs %d)",
						trial, s, par.Choice[s], seq.Choice[s])
				}
			}
		}
	}
}

func TestSolveParallelValidates(t *testing.T) {
	if _, err := SolveParallel(&Problem{K: 0}, 2); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestSubsetsOfSize(t *testing.T) {
	got := subsetsOfSize(4, 2)
	want := []Set{0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(subsetsOfSize(5, 0)) != 1 {
		t.Fatal("0-subsets wrong")
	}
	if len(subsetsOfSize(5, 5)) != 1 {
		t.Fatal("full subset wrong")
	}
	// Sizes match binomial coefficients across the board.
	binom := func(n, k int) int {
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
		}
		return c
	}
	for k := 1; k <= 10; k++ {
		for j := 0; j <= k; j++ {
			if got := len(subsetsOfSize(k, j)); got != binom(k, j) {
				t.Fatalf("|%d-subsets of %d| = %d, want %d", j, k, got, binom(k, j))
			}
		}
	}
}

// gosperNext is the reference successor: the next higher number with the same
// popcount.
func gosperNext(v uint32) uint32 {
	c := v & -v
	r := v + c
	return (r^v)>>2/c | r
}

// TestNthSubsetMatchesEnumeration cross-checks the combinadic unranking
// against the reference Gosper enumeration at every rank of every level for
// all universes up to k=12 (C(12,6)=924 per level — exhaustive but cheap).
func TestNthSubsetMatchesEnumeration(t *testing.T) {
	for k := 1; k <= 12; k++ {
		for j := 1; j <= k; j++ {
			all := subsetsOfSize(k, j)
			if uint64(len(all)) != binomial(k, j) {
				t.Fatalf("k=%d j=%d: %d subsets, want C=%d", k, j, len(all), binomial(k, j))
			}
			for rank, want := range all {
				if got := nthSubset(uint64(rank), j); Set(got) != want {
					t.Fatalf("nthSubset(%d, %d) = %b, want %b (k=%d)", rank, j, got, want, k)
				}
			}
		}
	}
}

// TestNthSubsetBoundariesMaxK checks the ranks SolveParallel's sharding
// actually lands on at the largest supported universe (k=MaxK, where
// enumeration is impossible): the first rank of each level is the lowest j
// bits, the last is the highest j bits, and unranking agrees with the Gosper
// successor at the seams of evenly split ranges.
func TestNthSubsetBoundariesMaxK(t *testing.T) {
	const k = MaxK
	for j := 1; j <= k; j++ {
		total := binomial(k, j)
		if first, want := nthSubset(0, j), uint32(1)<<uint(j)-1; first != want {
			t.Fatalf("level %d: first = %b, want %b", j, first, want)
		}
		last := nthSubset(total-1, j)
		if want := (uint32(1)<<uint(j) - 1) << uint(k-j); last != want {
			t.Fatalf("level %d: last = %b, want %b", j, last, want)
		}
		// Range starts for a 7-way split, plus the very ends: each start's
		// Gosper successor must be the next rank's unranking. Only ranks with
		// a successor qualify (total-2 underflows when the level is a
		// singleton, so guard before subtracting).
		if total < 2 {
			continue
		}
		chunk := (total + 6) / 7
		for _, rank := range []uint64{0, chunk, 2 * chunk, 3 * chunk, total - 2} {
			if rank >= total-1 {
				continue
			}
			v := nthSubset(rank, j)
			next := nthSubset(rank+1, j)
			if next <= v {
				t.Fatalf("level %d: rank %d -> %d not increasing (%b, %b)", j, rank, rank+1, v, next)
			}
			if g := gosperNext(v); g != next {
				t.Fatalf("level %d rank %d: gosper(%b) = %b, want %b", j, rank, v, g, next)
			}
		}
	}
}

// TestSolveParallelMoreWorkersThanRanges pins the sharding when the pool is
// far wider than any level (workers > C(k, level) for every level): every
// range degenerates to a single subset and the result still matches Solve.
func TestSolveParallelMoreWorkersThanRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := randomProblem(rng, 4, 6)
	seq, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(p, 64) // C(4,2) = 6 is the widest level
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost != seq.Cost {
		t.Fatalf("cost %d, want %d", par.Cost, seq.Cost)
	}
	for s := range seq.C {
		if par.C[s] != seq.C[s] || par.Choice[s] != seq.Choice[s] {
			t.Fatalf("state %b differs", s)
		}
	}
}

// TestSolveParallelCtxCancellation drives a deadline into the middle of a
// large sweep: SolveParallelCtx must return context.DeadlineExceeded promptly
// (the stride polls bail out) rather than finishing the O(N·2^K) scan.
func TestSolveParallelCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := randomProblem(rng, 20, 40)

	// Pre-cancelled: rejected before any worker spins up.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := SolveParallelCtx(pre, p, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := SolveParallelCtx(ctx, p, 4)
	elapsed := time.Since(start)
	if sol != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got (%v, %v), want DeadlineExceeded", sol, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, deadline not honored mid-sweep", elapsed)
	}

	// The sequential solver honors the same contract.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := SolveCtx(ctx2, p); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveCtx: %v", err)
	}
}

// TestSolveParallelWorkerPanicPropagates injects a panic into one worker's
// range via the test hook: the pool must shut down and surface the panic as
// an error instead of deadlocking the level barrier (wg.Done was unreachable
// before the recover fix).
func TestSolveParallelWorkerPanicPropagates(t *testing.T) {
	var fired atomic.Bool
	solveParallelRangeHook = func(start Set) {
		if start.Size() == 2 && fired.CompareAndSwap(false, true) {
			panic("injected fault") // blow up somewhere mid-DP, not level 1
		}
	}
	defer func() { solveParallelRangeHook = nil }()

	rng := rand.New(rand.NewSource(65))
	p := randomProblem(rng, 10, 8)
	done := make(chan error, 1)
	go func() {
		_, err := SolveParallel(p, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("err = %v, want worker-panicked error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SolveParallel deadlocked after a worker panic")
	}
	if !fired.Load() {
		t.Fatal("fault never injected")
	}
}

func TestSubsetsOfSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid subset size did not panic")
		}
	}()
	subsetsOfSize(3, 4)
}

func TestStats(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{3, 1},
		Actions: []Action{
			{Name: "probe", Set: SetOf(0), Cost: 1},
			{Name: "fix0", Set: SetOf(0), Cost: 2, Treatment: true},
			{Name: "fix1", Set: SetOf(1), Cost: 2, Treatment: true},
		},
	}
	sol, _ := Solve(p)
	tree, _ := sol.Tree(p)
	st, err := Stats(p, tree)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != tree.CountNodes() || st.Depth != tree.Depth() {
		t.Fatal("shape stats wrong")
	}
	if st.TestNodes+st.TreatmentNodes != st.Nodes {
		t.Fatal("node partition wrong")
	}
	if st.WorstPathLen < 1 || st.WorstPathCost < 2 {
		t.Fatalf("worst path implausible: %+v", st)
	}
	if st.ExpectedActions == 0 {
		t.Fatal("expected actions zero")
	}
	if s := st.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestStatsErrors(t *testing.T) {
	p := fig1like()
	if _, err := Stats(p, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	// Tree stranding object 1.
	bad := &Node{Action: 1, Set: Universe(2)}
	if _, err := Stats(p, bad); err == nil {
		t.Fatal("stranding tree accepted")
	}
}

func BenchmarkSolveParallelK16(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(62)), 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveParallel(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplainPricesActions(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	u := Universe(p.K)
	rows := Explain(p, sol, u)
	if len(rows) != len(p.Actions) {
		t.Fatalf("rows = %d", len(rows))
	}
	best := Inf
	var optimalSeen bool
	for _, r := range rows {
		if r.Applicable && r.M < best {
			best = r.M
		}
		if r.Optimal {
			optimalSeen = true
			if r.M != sol.C[u] {
				t.Fatalf("optimal row M = %d, want C(U) = %d", r.M, sol.C[u])
			}
		}
	}
	if !optimalSeen {
		t.Fatal("no row marked optimal")
	}
	if best != sol.C[u] {
		t.Fatalf("min over rows %d != C(U) %d", best, sol.C[u])
	}
	// A test that cannot split is marked inapplicable with infinite M.
	singleton := SetOf(0)
	for _, r := range Explain(p, sol, singleton) {
		if !p.Actions[r.Action].Treatment && r.Applicable {
			t.Fatalf("test %s applicable on a singleton", r.Name)
		}
	}
}
