package stripe

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, shards := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, max(shards, 1))
			p.Run(shards, func(i int) { hits[i].Add(1) })
			for i := 0; i < shards; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, i, got)
				}
			}
		}
	}
}

func TestRunIsABarrier(t *testing.T) {
	p := New(4)
	var done atomic.Int32
	p.Run(100, func(int) { done.Add(1) })
	if got := done.Load(); got != 100 {
		t.Fatalf("Run returned with %d/100 shards complete", got)
	}
}

func TestShardPanicReRaisedAfterBarrier(t *testing.T) {
	p := New(2)
	var completed atomic.Int32
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("shard panic did not propagate to the caller")
			}
			if fmt.Sprint(r) != "boom 3" {
				t.Fatalf("unexpected panic value %v", r)
			}
		}()
		p.Run(8, func(i int) {
			if i == 3 {
				panic(fmt.Sprintf("boom %d", i))
			}
			completed.Add(1)
		})
	}()
	// The barrier held: every non-panicking shard finished before the
	// panic was re-raised.
	if got := completed.Load(); got != 7 {
		t.Fatalf("%d/7 non-panicking shards completed before re-raise", got)
	}
	// The pool survives a panicking job.
	var n atomic.Int32
	p.Run(16, func(int) { n.Add(1) })
	if n.Load() != 16 {
		t.Fatal("pool unusable after a shard panic")
	}
}

// TestConcurrentRuns drives many simultaneous jobs through one small pool:
// the overflow-runs-inline rule must keep every job completing even when the
// jobs outnumber the workers many times over.
func TestConcurrentRuns(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	for j := 0; j < 32; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			p.Run(50, func(i int) { sum.Add(int64(i)) })
			if got := sum.Load(); got != 50*49/2 {
				t.Errorf("concurrent Run summed %d", got)
			}
		}()
	}
	wg.Wait()
}

// TestNestedRun proves a shard may itself call Run without deadlocking the
// pool (the inner job overflows inline when no worker is free).
func TestNestedRun(t *testing.T) {
	p := New(2)
	var inner atomic.Int32
	p.Run(4, func(int) {
		p.Run(4, func(int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 16 {
		t.Fatalf("nested runs completed %d/16 inner shards", got)
	}
}

// goid reports the calling goroutine's id, parsed from a stack header.
// Test-only: there is no supported API, but the header format
// ("goroutine N [status]:") is stable and this is exactly the identity
// question the inline-overflow contract is about.
func goid() int {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := strings.Fields(string(buf[:n]))
	id, _ := strconv.Atoi(fields[1])
	return id
}

// TestInlineOverflowShardPanicReRaised pins the panic contract on the
// overflow-inline path: when every worker is busy, shards run in the
// submitting goroutine, and a panic there must carry exactly the
// worker-shard semantics — recovered at the shard boundary, held until the
// barrier, re-raised from Run only after every other shard has completed,
// with the pool still usable afterwards.
func TestInlineOverflowShardPanicReRaised(t *testing.T) {
	p := New(1)

	// Park the pool's only worker with a directly injected blocking task:
	// the unbuffered send returns only once the worker has taken it, so from
	// here the worker is provably busy until release closes.
	release := make(chan struct{})
	var parked sync.WaitGroup
	parked.Add(1)
	p.tasks <- task{fn: func(int) { <-release }, wg: &parked, grab: func(any) {}}

	// Every submission below now finds the worker busy and takes the
	// select-default overflow path, so all shards run inline right here.
	caller := goid()
	const shards = 8
	var completed atomic.Int32
	var offWorker atomic.Int32
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("inline shard panic did not propagate to the caller")
			}
			if fmt.Sprint(r) != "inline boom 2" {
				t.Fatalf("unexpected panic value %v", r)
			}
		}()
		p.Run(shards, func(i int) {
			if goid() != caller {
				offWorker.Add(1)
			}
			if i == 2 {
				panic(fmt.Sprintf("inline boom %d", i))
			}
			completed.Add(1)
		})
	}()
	if n := offWorker.Load(); n != 0 {
		t.Fatalf("%d shards escaped to a worker while the pool was saturated", n)
	}
	// Same barrier discipline as a worker-shard panic: every non-panicking
	// shard finished before the re-raise.
	if got := completed.Load(); got != shards-1 {
		t.Fatalf("%d/%d non-panicking shards completed before re-raise", got, shards-1)
	}

	close(release)
	parked.Wait()

	// And the pool survives, workers intact.
	var n atomic.Int32
	p.Run(16, func(int) { n.Add(1) })
	if n.Load() != 16 {
		t.Fatal("pool unusable after an inline shard panic")
	}
}

// TestZeroLengthPlaneRanges holds the degenerate-geometry contract end to
// end: a plane smaller than the shard count hands empty spans to the high
// shards, and neither Range nor Run's barrier may wedge on them.
func TestZeroLengthPlaneRanges(t *testing.T) {
	// Range must stay well-formed when n < shards (empty spans, full cover)
	// and when n == 0 (every span empty).
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {0, 8}, {1, 8}, {3, 8}, {7, 8},
	} {
		covered, empty := 0, 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := Range(tc.n, tc.shards, i)
			if hi < lo {
				t.Fatalf("Range(%d,%d,%d) inverted: [%d,%d)", tc.n, tc.shards, i, lo, hi)
			}
			if lo == hi {
				empty++
			}
			covered += hi - lo
		}
		if covered != tc.n {
			t.Fatalf("Range(%d,%d,·) covers %d units", tc.n, tc.shards, covered)
		}
		if wantEmpty := max(tc.shards-tc.n, 0); empty != wantEmpty {
			t.Fatalf("Range(%d,%d,·): %d empty spans, want %d", tc.n, tc.shards, empty, wantEmpty)
		}
	}
	// Degenerate shards<=0 spans the whole plane (the sequential fallback).
	if lo, hi := Range(5, 0, 0); lo != 0 || hi != 5 {
		t.Fatalf("Range(5,0,0) = [%d,%d), want [0,5)", lo, hi)
	}

	// The barrier must not deadlock when most shards get nothing to do, and
	// must still touch every unit exactly once. Run the sweep off the test
	// goroutine so a wedged barrier fails fast instead of hanging the suite.
	p := New(2)
	done := make(chan struct{})
	var hits [3]atomic.Int32
	go func() {
		defer close(done)
		// 16 shards over a 3-unit plane: 13 shards see lo == hi.
		p.Run(16, func(i int) {
			lo, hi := Range(3, 16, i)
			for j := lo; j < hi; j++ {
				hits[j].Add(1)
			}
		})
		// Zero shards is a no-op, not a hang (and must not invoke fn).
		p.Run(0, func(int) { panic("fn invoked for zero shards") })
		p.Run(-4, func(int) { panic("fn invoked for negative shards") })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier deadlocked on zero-length plane ranges")
	}
	for j := range hits {
		if got := hits[j].Load(); got != 1 {
			t.Fatalf("unit %d swept %d times", j, got)
		}
	}
}

func TestSharedPoolSizedToHost(t *testing.T) {
	p := Shared()
	if p != Shared() {
		t.Fatal("Shared returned distinct pools")
	}
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("shared pool has %d workers, want %d", got, want)
	}
}

func TestRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1 << 14} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for i := 0; i < shards; i++ {
				lo, hi := Range(n, shards, i)
				if lo != prev {
					t.Fatalf("Range(%d,%d,%d) = [%d,%d): gap after %d", n, shards, i, lo, hi, prev)
				}
				if hi < lo {
					t.Fatalf("Range(%d,%d,%d) inverted", n, shards, i)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Range(%d,%d,·) covers %d units", n, shards, prev)
			}
		}
	}
}
