package bvmalg

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bvm"
	"repro/internal/hypercube"
)

func newMachine(t testing.TB, r int) *bvm.Machine {
	t.Helper()
	m, err := bvm.New(r, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCycleIDSpec checks the defining property on all supported simulated
// sizes: PE (i, j) holds bit j of cycle number i.
func TestCycleIDSpec(t *testing.T) {
	for r := 1; r <= 3; r++ {
		m := newMachine(t, r)
		start := m.InstrCount
		CycleID(m, bvm.R(0))
		if cost := m.InstrCount - start; cost != int64(4*m.Top.Q) {
			t.Errorf("r=%d: CycleID cost %d instructions, want 4Q=%d", r, cost, 4*m.Top.Q)
		}
		v := m.Peek(bvm.R(0))
		for x := 0; x < m.N(); x++ {
			c, p := m.Top.Split(x)
			want := c>>uint(p)&1 == 1
			if v.Get(x) != want {
				t.Fatalf("r=%d: PE (%d,%d) cycle-ID bit = %v, want %v", r, c, p, v.Get(x), want)
			}
		}
	}
}

// TestCycleIDOneEndInterpretation checks the paper's alternative reading:
// the bit is 1 iff the PE is at the 1-end of its lateral link.
func TestCycleIDOneEnd(t *testing.T) {
	m := newMachine(t, 2)
	CycleID(m, bvm.R(0))
	v := m.Peek(bvm.R(0))
	for x := 0; x < m.N(); x++ {
		oneEnd := x > m.Top.Lateral(x)
		if v.Get(x) != oneEnd {
			t.Fatalf("PE %d: bit %v, 1-end %v", x, v.Get(x), oneEnd)
		}
	}
}

func TestProcessorIDSpec(t *testing.T) {
	for r := 1; r <= 3; r++ {
		m := newMachine(t, r)
		base := 10
		ProcessorID(m, base)
		q := m.Top.AddrBits
		for x := 0; x < m.N(); x++ {
			for b := 0; b < q; b++ {
				want := x>>uint(b)&1 == 1
				if got := m.PeekBit(bvm.R(base+b), x); got != want {
					t.Fatalf("r=%d PE %d bit %d: got %v want %v", r, x, b, got, want)
				}
			}
		}
	}
}

func TestWordBitPanics(t *testing.T) {
	w := Word{Base: 0, Width: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(4) on width-4 word did not panic")
		}
	}()
	w.Bit(4)
}

func TestWordMaxValue(t *testing.T) {
	if (Word{Width: 8}).MaxValue() != 255 {
		t.Error("8-bit MaxValue wrong")
	}
	if (Word{Width: 64}).MaxValue() != ^uint64(0) {
		t.Error("64-bit MaxValue wrong")
	}
}

func loadWords(m *bvm.Machine, w Word, vals []uint64) {
	for pe, v := range vals {
		m.SetUint(w.Base, w.Width, pe, v)
	}
}

func readWords(m *bvm.Machine, w Word) []uint64 {
	out := make([]uint64, m.N())
	for pe := range out {
		out[pe] = m.Uint(w.Base, w.Width, pe)
	}
	return out
}

func randWords(rng *rand.Rand, n int, max uint64) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(int64(max)))
	}
	return vals
}

func TestSetWordConst(t *testing.T) {
	m := newMachine(t, 1)
	w := Word{Base: 0, Width: 8}
	SetWordConst(m, w, 0xC5)
	for pe := 0; pe < m.N(); pe++ {
		if got := m.Uint(0, 8, pe); got != 0xC5 {
			t.Fatalf("PE %d = %#x", pe, got)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized constant did not panic")
			}
		}()
		SetWordConst(m, Word{Base: 0, Width: 4}, 16)
	}()
}

func TestAddWordAndSaturation(t *testing.T) {
	m := newMachine(t, 2)
	x, y, sum := Word{0, 8}, Word{8, 8}, Word{16, 8}
	rng := rand.New(rand.NewSource(1))
	xs, ys := randWords(rng, m.N(), 256), randWords(rng, m.N(), 256)
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	AddWord(m, sum, x, y)
	for pe, got := range readWords(m, sum) {
		if want := (xs[pe] + ys[pe]) & 0xff; got != want {
			t.Fatalf("PE %d: %d+%d = %d, want %d", pe, xs[pe], ys[pe], got, want)
		}
	}
	AddSatWord(m, sum, x, y)
	for pe, got := range readWords(m, sum) {
		want := xs[pe] + ys[pe]
		if want > 255 {
			want = 255
		}
		if got != want {
			t.Fatalf("sat PE %d: %d+%d = %d, want %d", pe, xs[pe], ys[pe], got, want)
		}
	}
	// INF absorbing: all-ones + anything = all-ones.
	loadWords(m, x, make([]uint64, m.N())) // zeros
	for pe := 0; pe < m.N(); pe++ {
		m.SetUint(x.Base, 8, pe, 255)
	}
	AddSatWord(m, sum, x, y)
	for pe, got := range readWords(m, sum) {
		if got != 255 {
			t.Fatalf("INF+%d = %d, want 255 at PE %d", ys[pe], got, pe)
		}
	}
}

func TestLessWord(t *testing.T) {
	m := newMachine(t, 2)
	x, y := Word{0, 10}, Word{10, 10}
	rng := rand.New(rand.NewSource(2))
	xs, ys := randWords(rng, m.N(), 1024), randWords(rng, m.N(), 1024)
	// Force some equal pairs (less must be false there).
	for pe := 0; pe < m.N(); pe += 5 {
		ys[pe] = xs[pe]
	}
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	LessWord(m, x, y)
	b := m.Peek(bvm.B)
	for pe := 0; pe < m.N(); pe++ {
		if b.Get(pe) != (xs[pe] < ys[pe]) {
			t.Fatalf("PE %d: less(%d,%d) = %v", pe, xs[pe], ys[pe], b.Get(pe))
		}
	}
}

func TestMinWord(t *testing.T) {
	m := newMachine(t, 2)
	x, y, out := Word{0, 12}, Word{12, 12}, Word{24, 12}
	rng := rand.New(rand.NewSource(3))
	xs, ys := randWords(rng, m.N(), 4096), randWords(rng, m.N(), 4096)
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	MinWord(m, out, x, y)
	for pe, got := range readWords(m, out) {
		want := min(xs[pe], ys[pe])
		if got != want {
			t.Fatalf("PE %d: min(%d,%d) = %d", pe, xs[pe], ys[pe], got)
		}
	}
	// Aliasing dst = x.
	MinWord(m, x, x, y)
	for pe, got := range readWords(m, x) {
		if want := min(xs[pe], ys[pe]); got != want {
			t.Fatalf("aliased PE %d: got %d want %d", pe, got, want)
		}
	}
}

func TestCondCopyAndCondMin(t *testing.T) {
	m := newMachine(t, 2)
	dst, src := Word{0, 8}, Word{8, 8}
	cond := bvm.R(20)
	rng := rand.New(rand.NewSource(4))
	ds, ss := randWords(rng, m.N(), 256), randWords(rng, m.N(), 256)
	loadWords(m, dst, ds)
	loadWords(m, src, ss)
	for pe := 0; pe < m.N(); pe++ {
		m.PokeBit(cond, pe, pe%3 == 0)
	}
	CondCopyWord(m, dst, src, cond)
	for pe, got := range readWords(m, dst) {
		want := ds[pe]
		if pe%3 == 0 {
			want = ss[pe]
		}
		if got != want {
			t.Fatalf("CondCopy PE %d: got %d want %d", pe, got, want)
		}
	}

	loadWords(m, dst, ds)
	CondMinWord(m, dst, src, cond)
	for pe, got := range readWords(m, dst) {
		want := ds[pe]
		if pe%3 == 0 {
			want = min(ds[pe], ss[pe])
		}
		if got != want {
			t.Fatalf("CondMin PE %d: got %d want %d", pe, got, want)
		}
	}
}

// TestFetchPartnerAllDims checks, for every hypercube dimension, that the
// shadow word ends up holding exactly the partner's word.
func TestFetchPartnerAllDims(t *testing.T) {
	for r := 1; r <= 2; r++ {
		m := newMachine(t, r)
		src, shadow := Word{0, 6}, Word{6, 6}
		rng := rand.New(rand.NewSource(int64(r)))
		vals := randWords(rng, m.N(), 64)
		for dim := 0; dim < m.Top.AddrBits; dim++ {
			loadWords(m, src, vals)
			FetchPartner(m, dim, WordPairs(src, shadow), 40)
			got := readWords(m, shadow)
			for pe := 0; pe < m.N(); pe++ {
				if got[pe] != vals[pe^1<<uint(dim)] {
					t.Fatalf("r=%d dim=%d PE %d: shadow %d, want partner %d",
						r, dim, pe, got[pe], vals[pe^1<<uint(dim)])
				}
			}
			// Source must be intact.
			for pe, v := range readWords(m, src) {
				if v != vals[pe] {
					t.Fatalf("r=%d dim=%d: source clobbered at PE %d", r, dim, pe)
				}
			}
		}
	}
}

func TestFetchPartnerBadDimPanics(t *testing.T) {
	m := newMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad dim did not panic")
		}
	}()
	FetchPartner(m, m.Top.AddrBits, nil, 0)
}

func TestMarkPE0(t *testing.T) {
	m := newMachine(t, 2)
	MarkPE0(m, bvm.R(0))
	v := m.Peek(bvm.R(0))
	if !v.Get(0) || v.Count() != 1 {
		t.Fatalf("MarkPE0 = %s", v)
	}
}

func TestBroadcastWord(t *testing.T) {
	m := newMachine(t, 2)
	addrBase := 30
	ProcessorID(m, addrBase)
	val, shadowVal := Word{0, 8}, Word{8, 8}
	sender, shadowSender, cond := bvm.R(20), bvm.R(21), bvm.R(22)
	// Junk everywhere except PE 0's payload.
	rng := rand.New(rand.NewSource(5))
	vals := randWords(rng, m.N(), 256)
	vals[0] = 0x5A
	loadWords(m, val, vals)
	MarkPE0(m, sender)
	BroadcastWord(m, val, sender, addrBase, shadowVal, shadowSender, cond, 40)
	for pe, got := range readWords(m, val) {
		if got != 0x5A {
			t.Fatalf("PE %d = %#x, want 0x5A", pe, got)
		}
	}
	if m.Peek(sender).Count() != m.N() {
		t.Fatal("not every PE became a sender")
	}
}

// TestPropagationWordsMatchHypercube drives the instruction-level
// propagations against the word-level reference in internal/hypercube.
func TestPropagationWordsMatchHypercube(t *testing.T) {
	m := newMachine(t, 2) // 64 PEs, q=6
	q := m.Top.AddrBits
	addrBase := 60
	ProcessorID(m, addrBase)
	val, shadowVal := Word{0, 8}, Word{8, 8}
	sender, shadowSender, cond := bvm.R(20), bvm.R(21), bvm.R(22)

	for g := 0; g < 3; g++ {
		// Distinct one-hot-ish tags on the g-group, zero elsewhere.
		vals := make([]uint64, m.N())
		for pe := range vals {
			if popcount(pe) == g {
				vals[pe] = uint64(pe%8) | 0x10
			}
		}
		// Propagation 1 with OR combine.
		loadWords(m, val, vals)
		for pe := range vals {
			m.PokeBit(sender, pe, popcount(pe) == g)
		}
		Propagation1Word(m, val, sender, addrBase, CombineOr, shadowVal, shadowSender, cond, 40)
		want := hypercube.Propagation1(q, vals, g, func(a, b uint64) uint64 { return a | b })
		for pe, got := range readWords(m, val) {
			if got != want[pe] {
				t.Fatalf("prop1 g=%d PE %06b: got %#x want %#x", g, pe, got, want[pe])
			}
		}

		// Propagation 2 with OR combine.
		loadWords(m, val, vals)
		for pe := range vals {
			m.PokeBit(sender, pe, popcount(pe) == g)
		}
		Propagation2Word(m, val, sender, addrBase, CombineOr, shadowVal, shadowSender, cond, 40)
		want2 := hypercube.Propagation2(q, vals, g, func(a, b uint64) uint64 { return a | b })
		for pe, got := range readWords(m, val) {
			if got != want2[pe] {
				t.Fatalf("prop2 g=%d PE %06b: got %#x want %#x", g, pe, got, want2[pe])
			}
		}
	}
}

func TestPropagation2MinCombine(t *testing.T) {
	m := newMachine(t, 2)
	q := m.Top.AddrBits
	addrBase := 60
	ProcessorID(m, addrBase)
	val, shadowVal := Word{0, 8}, Word{8, 8}
	sender, shadowSender, cond := bvm.R(20), bvm.R(21), bvm.R(22)

	g := 1
	vals := make([]uint64, m.N())
	for pe := range vals {
		if popcount(pe) == g {
			vals[pe] = uint64(40 + pe)
		} else {
			vals[pe] = 255 // INF
		}
	}
	loadWords(m, val, vals)
	for pe := range vals {
		m.PokeBit(sender, pe, popcount(pe) == g)
	}
	Propagation2Word(m, val, sender, addrBase, CombineMin, shadowVal, shadowSender, cond, 40)
	want := hypercube.Propagation2(q, vals, g, func(a, b uint64) uint64 { return min(a, b) })
	for pe, got := range readWords(m, val) {
		if got != want[pe] {
			t.Fatalf("prop2-min PE %06b: got %d want %d", pe, got, want[pe])
		}
	}
}

func TestMinReduce(t *testing.T) {
	m := newMachine(t, 2)
	val, shadow := Word{0, 10}, Word{10, 10}
	rng := rand.New(rand.NewSource(6))
	vals := randWords(rng, m.N(), 1024)
	loadWords(m, val, vals)
	// Reduce over dims [2,5): blocks of addresses equal outside bits 2..4.
	MinReduce(m, val, 2, 5, shadow, 40)
	for pe, got := range readWords(m, val) {
		want := uint64(1 << 62)
		for other := 0; other < m.N(); other++ {
			if other&^0b11100 == pe&^0b11100 {
				want = min(want, vals[other])
			}
		}
		if got != want {
			t.Fatalf("PE %d: min = %d, want %d", pe, got, want)
		}
	}
}

func TestSumReduce(t *testing.T) {
	m := newMachine(t, 1)
	val, shadow := Word{0, 8}, Word{8, 8}
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	loadWords(m, val, vals)
	SumReduce(m, val, 0, 3, shadow, 40)
	for pe, got := range readWords(m, val) {
		if got != 36 {
			t.Fatalf("PE %d: sum = %d, want 36", pe, got)
		}
	}
}

func TestSumReduceSaturates(t *testing.T) {
	m := newMachine(t, 1)
	val, shadow := Word{0, 4}, Word{4, 4}
	vals := []uint64{15, 1, 2, 3, 4, 5, 6, 7} // contains INF = 15
	loadWords(m, val, vals)
	SumReduce(m, val, 0, 3, shadow, 40)
	for pe, got := range readWords(m, val) {
		if got != 15 {
			t.Fatalf("PE %d: saturated sum = %d, want 15", pe, got)
		}
	}
}

func TestLargeMachineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-PE machine in -short mode")
	}
	m := newMachine(t, 3)
	base := 100
	ProcessorID(m, base)
	// Spot-check a few PEs.
	for _, pe := range []int{0, 1, 777, 2047} {
		for b := 0; b < m.Top.AddrBits; b++ {
			if got := m.PeekBit(bvm.R(base+b), pe); got != (pe>>uint(b)&1 == 1) {
				t.Fatalf("PE %d bit %d wrong", pe, b)
			}
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func BenchmarkProcessorID(b *testing.B) {
	m, _ := bvm.New(2, bvm.DefaultRegisters)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProcessorID(m, 10)
	}
}

func BenchmarkMinReduceFullMachine(b *testing.B) {
	m, _ := bvm.New(2, bvm.DefaultRegisters)
	val, shadow := Word{0, 16}, Word{16, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinReduce(m, val, 0, m.Top.AddrBits, shadow, 40)
	}
}

func TestMinReduceDescendMatchesAscend(t *testing.T) {
	m1 := newMachine(t, 2)
	m2 := newMachine(t, 2)
	val, shadow := Word{0, 10}, Word{10, 10}
	rng := rand.New(rand.NewSource(31))
	vals := randWords(rng, m1.N(), 1024)
	loadWords(m1, val, vals)
	loadWords(m2, val, vals)
	MinReduce(m1, val, 1, 5, shadow, 40)
	MinReduceDescend(m2, val, 1, 5, shadow, 40)
	got1, got2 := readWords(m1, val), readWords(m2, val)
	for pe := range got1 {
		if got1[pe] != got2[pe] {
			t.Fatalf("PE %d: ascend %d != descend %d", pe, got1[pe], got2[pe])
		}
	}
}

// TestBVMRoutesXSXP exercises the exchange routes at the instruction level
// against the topology's definition.
func TestBVMRoutesXSXP(t *testing.T) {
	m := newMachine(t, 2)
	src := Word{0, 1}
	for pe := 0; pe < m.N(); pe++ {
		m.PokeBit(src.Bit(0), pe, pe%3 == 0)
	}
	m.Mov(bvm.R(5), bvm.Via(src.Bit(0), bvm.RouteXS))
	m.Mov(bvm.R(6), bvm.Via(src.Bit(0), bvm.RouteXP))
	for pe := 0; pe < m.N(); pe++ {
		if got, want := m.PeekBit(bvm.R(5), pe), m.PeekBit(src.Bit(0), m.Top.XS(pe)); got != want {
			t.Fatalf("XS at PE %d: %v != %v", pe, got, want)
		}
		if got, want := m.PeekBit(bvm.R(6), pe), m.PeekBit(src.Bit(0), m.Top.XP(pe)); got != want {
			t.Fatalf("XP at PE %d: %v != %v", pe, got, want)
		}
	}
}

// TestMinReduceAllWavefrontMatchesNaive checks the pipelined single-turn
// schedule against the per-dimension reduction, and its instruction-count
// advantage (ablation A2 at the machine level).
func TestMinReduceAllWavefrontMatchesNaive(t *testing.T) {
	for r := 1; r <= 3; r++ {
		naive := newMachine(t, r)
		pipe := newMachine(t, r)
		val, shadow := Word{0, 10}, Word{10, 10}
		rng := rand.New(rand.NewSource(int64(40 + r)))
		vals := randWords(rng, naive.N(), 1000)
		want := uint64(1 << 62)
		for _, v := range vals {
			if v < want {
				want = v
			}
		}
		loadWords(naive, val, vals)
		loadWords(pipe, val, vals)

		MinReduce(naive, val, 0, naive.Top.AddrBits, shadow, 40)
		MinReduceAllWavefront(pipe, val, shadow, 40)

		for pe := 0; pe < naive.N(); pe++ {
			nv := naive.Uint(val.Base, val.Width, pe)
			pv := pipe.Uint(val.Base, val.Width, pe)
			if nv != want || pv != want {
				t.Fatalf("r=%d PE %d: naive %d, wavefront %d, want %d", r, pe, nv, pv, want)
			}
		}
		if r >= 2 && pipe.InstrCount >= naive.InstrCount {
			t.Errorf("r=%d: wavefront %d instructions, naive %d — no advantage",
				r, pipe.InstrCount, naive.InstrCount)
		}
		t.Logf("r=%d: naive %d instructions, wavefront %d (%.1fx)",
			r, naive.InstrCount, pipe.InstrCount,
			float64(naive.InstrCount)/float64(pipe.InstrCount))
	}
}

// TestFaultsAreDetectedByIdentityPrograms: injected hardware faults corrupt
// the §4 identity patterns, so running cycle-ID/processor-ID and checking
// their specifications is a machine self-test (failure-injection coverage).
func TestFaultsAreDetectedByIdentityPrograms(t *testing.T) {
	// A broken lateral link corrupts the cycle-ID.
	m := newMachine(t, 2)
	m.InjectBrokenLateral(7)
	CycleID(m, bvm.R(0))
	v := m.Peek(bvm.R(0))
	mismatch := false
	for x := 0; x < m.N(); x++ {
		c, p := m.Top.Split(x)
		if v.Get(x) != (c>>uint(p)&1 == 1) {
			mismatch = true
			break
		}
	}
	if !mismatch {
		t.Fatal("broken lateral link went undetected by cycle-ID")
	}

	// A stuck register bit corrupts the processor-ID plane it lives in.
	m2 := newMachine(t, 2)
	base := 10
	m2.InjectStuckBit(bvm.R(base+2), 5, true)
	ProcessorID(m2, base)
	ok := true
	for x := 0; x < m2.N(); x++ {
		for b := 0; b < m2.Top.AddrBits; b++ {
			if m2.PeekBit(bvm.R(base+b), x) != (x>>uint(b)&1 == 1) {
				ok = false
			}
		}
	}
	if ok {
		t.Fatal("stuck bit went undetected by processor-ID")
	}
}

// TestBitonicSortWordsOnBVM sorts 64 numbers bit-serially on the machine and
// checks against the standard library.
func TestBitonicSortWordsOnBVM(t *testing.T) {
	m := newMachine(t, 2)
	addrBase := 60
	ProcessorID(m, addrBase)
	val, shadow := Word{0, 12}, Word{12, 12}
	rng := rand.New(rand.NewSource(51))
	vals := randWords(rng, m.N(), 4096)
	vals[3] = vals[7] // duplicates must survive
	loadWords(m, val, vals)
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })

	BitonicSortWords(m, val, shadow, addrBase, 30)

	got := readWords(m, val)
	for pe := range want {
		if got[pe] != want[pe] {
			t.Fatalf("PE %d = %d, want %d", pe, got[pe], want[pe])
		}
	}
}

// TestBitonicSortWordsTinyMachine covers the 8-PE machine where the final
// stage's direction bit lies beyond the address width.
func TestBitonicSortWordsTinyMachine(t *testing.T) {
	m := newMachine(t, 1)
	addrBase := 60
	ProcessorID(m, addrBase)
	val, shadow := Word{0, 8}, Word{8, 8}
	vals := []uint64{200, 3, 150, 9, 9, 77, 1, 42}
	loadWords(m, val, vals)
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	BitonicSortWords(m, val, shadow, addrBase, 30)
	for pe, g := range readWords(m, val) {
		if g != want[pe] {
			t.Fatalf("PE %d = %d, want %d", pe, g, want[pe])
		}
	}
}

// TestRoutePermutationOnBVM routes 64 words through a Benes network on the
// machine, control bits streamed through the input chain.
func TestRoutePermutationOnBVM(t *testing.T) {
	m := newMachine(t, 2)
	val, shadow := Word{0, 10}, Word{10, 10}
	rng := rand.New(rand.NewSource(81))
	vals := randWords(rng, m.N(), 1024)
	loadWords(m, val, vals)
	dest := rng.Perm(m.N())
	instr, err := RoutePermutation(m, val, shadow, dest, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	got := readWords(m, val)
	for i := range vals {
		if got[dest[i]] != vals[i] {
			t.Fatalf("element from PE %d should be at %d: want %d, got %d",
				i, dest[i], vals[i], got[dest[i]])
		}
	}
	if instr <= 0 {
		t.Fatal("no instructions counted")
	}
	// Errors propagate.
	if _, err := RoutePermutation(m, val, shadow, []int{0, 1}, 100, 30); err == nil {
		t.Fatal("short dest accepted")
	}
}
