// Package ctxflow proves the cancellation-plumbing discipline that PR 3
// established when ttserve gained real deadlines: library code under
// internal/ must not mint root contexts (context.Background/TODO), and every
// exported Solve* entry point must either accept a context.Context and
// actually use it, or be a thin wrapper that delegates to a variant that
// does. A solver that quietly roots its own context is a solver the server
// cannot cancel — the O(N·2^K) sweep outlives the client that asked for it.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "internal/ library code must not call context.Background/TODO outside " +
		"single-statement convenience wrappers, and exported Solve* entry points " +
		"must thread a context.Context",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Path, "/internal/") && !strings.HasPrefix(pass.Path, "internal/") {
		return nil // binaries and examples legitimately root their own contexts
	}
	for _, file := range pass.Files {
		if pass.TestFiles[file] {
			continue // tests root contexts by design
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRootContexts(pass, fd)
			checkSolveEntryPoint(pass, fd)
		}
	}
	return nil
}

// checkRootContexts flags context.Background()/context.TODO() except inside a
// thin wrapper (a single return statement delegating to a function that
// receives the fresh context), the one place a root context is the documented
// convenience rather than a severed cancellation chain.
func checkRootContexts(pass *analysis.Pass, fd *ast.FuncDecl) {
	// In a thin wrapper, a root context is permitted only as a direct
	// argument of the delegated call — `return SolveCtx(context.Background(), p)`.
	// `return context.Background()` itself is still a severed chain.
	allowed := map[*ast.CallExpr]bool{}
	if isThinWrapper(fd) {
		ret := fd.Body.List[0].(*ast.ReturnStmt)
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					allowed[inner] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := rootContextName(pass, call)
		if name == "" || allowed[call] {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() in internal/ library code severs the caller's cancellation chain; thread a ctx parameter (or make this a single-return wrapper over the Ctx variant)", name)
		return true
	})
}

// rootContextName returns "Background" or "TODO" when call is that
// context-package call, else "".
func rootContextName(pass *analysis.Pass, call *ast.CallExpr) string {
	for _, name := range []string{"Background", "TODO"} {
		if analysis.IsPkgFunc(pass.TypesInfo, call, "context", name) {
			return name
		}
	}
	return ""
}

// isThinWrapper reports whether fd's body is exactly one return statement
// whose results are calls — the Solve(p) -> SolveCtx(context.Background(), p)
// convenience shape.
func isThinWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		if _, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}

// checkSolveEntryPoint enforces the entry-point contract on exported Solve*
// functions: a context.Context first parameter that the body actually
// references, or the thin-wrapper shape delegating to a context-taking
// callee.
func checkSolveEntryPoint(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "Solve") {
		return
	}
	ctxParam, hasCtxType := contextParam(pass, fd)
	if !hasCtxType {
		if isThinWrapper(fd) && wrapperPassesContext(pass, fd) {
			return
		}
		pass.Reportf(fd.Name.Pos(), "exported solver entry point %s neither takes a context.Context nor delegates to a variant that does; it cannot be cancelled", fd.Name.Name)
		return
	}
	if ctxParam == nil {
		pass.Reportf(fd.Type.Params.Pos(), "%s discards its context parameter: deadlines and disconnects never reach the sweep", fd.Name.Name)
		return
	}
	if ctxParam.Name == "_" {
		pass.Reportf(ctxParam.Pos(), "%s discards its context parameter: deadlines and disconnects never reach the sweep", fd.Name.Name)
		return
	}
	obj := pass.ObjectOf(ctxParam)
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj && id != ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		pass.Reportf(ctxParam.Pos(), "%s accepts a context but never passes it down or polls it; deadlines and disconnects never reach the sweep", fd.Name.Name)
	}
}

// contextParam inspects the first parameter: hasCtxType reports whether its
// type is context.Context, and the ident is its name (nil when unnamed).
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) (*ast.Ident, bool) {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil, false
	}
	first := fd.Type.Params.List[0]
	if !isContextType(pass.TypeOf(first.Type)) {
		return nil, false
	}
	if len(first.Names) == 0 {
		return nil, true
	}
	return first.Names[0], true
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "context" && obj.Name() == "Context"
}

// wrapperPassesContext reports whether the wrapper's delegated call receives
// a context argument (a root context or a forwarded one).
func wrapperPassesContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	ret := fd.Body.List[0].(*ast.ReturnStmt)
	for _, res := range ret.Results {
		call, ok := ast.Unparen(res).(*ast.CallExpr)
		if !ok {
			continue
		}
		for _, arg := range call.Args {
			if isContextType(pass.TypeOf(arg)) {
				return true
			}
		}
	}
	return false
}
