// Command ttlint is the repo's multichecker: it runs the internal/analysis
// suite (certorder, ctxflow, durability, flushcheck, panicsafe) over Go
// packages and reports violations of the invariants this codebase has paid
// for in incidents — certify-before-cache, context plumbing, best-effort
// durability, flush-error checking, and worker-pool panic safety.
//
// Standalone:
//
//	ttlint [-json|-sarif] [-only name,name] [-tests] [-dir mod] [packages]
//
// Exit codes: 0 clean, 1 findings, 2 usage/load failure.
//
// As a vet tool (go vet -vettool=$(which ttlint) ./...), it speaks the
// unitchecker protocol: -V=full prints an identity line, and a single
// *.cfg argument runs the suite over one compilation unit described by the
// go command.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
	"repro/internal/analysis/sarif"
)

const (
	toolName    = "ttlint"
	toolVersion = "1.0.0"
	toolURI     = "https://example.invalid/repro/docs/ANALYSIS.md"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet -vettool` handshake: print an identity line for build caching.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Fprintf(stdout, "%s version v%s sha n/a\n", toolName, toolVersion)
			return 0
		}
	}
	// Unitchecker mode: a single *.cfg argument describing one package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], stderr)
	}

	fs := flag.NewFlagSet(toolName, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON  = fs.Bool("json", false, "emit findings as a JSON array")
		asSARIF = fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		only    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		tests   = fs.Bool("tests", false, "also analyze in-package _test.go files")
		dir     = fs.String("dir", "", "directory to resolve package patterns in (default: cwd)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [flags] [packages]\n", toolName)
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "analyzers:\n")
		for _, a := range checkers.All {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	anz, err := checkers.Select(*only)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, IncludeTests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	diags, err := analysis.Run(anz, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	if err := emit(diags, *asJSON, *asSARIF, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// emit writes findings in the selected format. Machine formats go to stdout,
// the human format to stderr (so `ttlint -sarif > findings.sarif` stays
// clean).
func emit(diags []analysis.Diagnostic, asJSON, asSARIF bool, stdout, stderr io.Writer) error {
	switch {
	case asSARIF:
		w := bufio.NewWriter(stdout)
		if err := toSARIF(diags).Encode(w); err != nil {
			return err
		}
		return w.Flush()
	case asJSON:
		w := bufio.NewWriter(stdout)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return err
		}
		return w.Flush()
	default:
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s\n", d)
		}
		if n := len(diags); n > 0 {
			fmt.Fprintf(stderr, "%s: %d finding(s)\n", toolName, n)
		}
		return nil
	}
}

// toSARIF converts the suite's findings into a single-run SARIF log, one rule
// per analyzer.
func toSARIF(diags []analysis.Diagnostic) *sarif.Log {
	log, runObj := sarif.NewLog(toolName, toolVersion, toolURI)
	for _, a := range checkers.All {
		runObj.AddRule(a.Name, a.Doc)
	}
	for _, d := range diags {
		runObj.AddResult(d.Analyzer, sarif.LevelWarning, d.Message, filepath.ToSlash(d.File), d.Line, d.Col)
	}
	return log
}

// vetConfig is the unitchecker protocol's per-package description, written by
// the go command into the *.cfg file. VetxOutput/Output name the facts file
// vet expects the tool to create (this suite computes no cross-package facts,
// so it writes an empty one).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
	Output      string
}

func runVet(cfgPath string, stderr io.Writer) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(stderr, "%s: parsing %s: %v\n", toolName, cfgPath, err)
		return 2
	}
	// Facts file first: vet treats its absence as tool failure even for
	// fact-free analyzers.
	for _, out := range []string{cfg.VetxOutput, cfg.Output} {
		if out == "" {
			continue
		}
		if err := os.WriteFile(out, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "%s: writing facts: %v\n", toolName, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	diags, err := analysis.Run(checkers.All, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", toolName, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2 // vet convention: nonzero exit + stderr text = findings
	}
	return 0
}

// typecheckUnit parses and type-checks one unitchecker compilation unit,
// resolving imports through the cfg's export-data file map.
func typecheckUnit(cfg *vetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	u := &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		TestFiles: map[*ast.File]bool{},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		u.Files = append(u.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			u.TestFiles[f] = true
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := conf.Check(cfg.ImportPath, fset, u.Files, u.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	u.Pkg = pkg
	return u, nil
}
