package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the ttlint binary once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ttlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ttlint: %v\n%s", err, out)
	}
	return bin
}

// seedModule writes a throwaway module containing exactly one violation per
// analyzer in the suite.
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintme\n\ngo 1.24\n",

		// flushcheck: dropped flush error.
		"internal/emit/emit.go": `package emit

import (
	"bufio"
	"fmt"
	"os"
)

func Dump() {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "answer")
	w.Flush()
}
`,

		// ctxflow: exported Solve* with no context, under internal/.
		"internal/eng/eng.go": `package eng

func SolveBlind(n int) int { return n * 2 }
`,

		// certorder: cache insert above the certify call.
		"certify/certify.go": `package certify

type Report struct{ OK bool }

func Check(cost uint64) Report { return Report{OK: true} }
`,
		"internal/gate/gate.go": `package gate

import "lintme/certify"

type entry struct{ cost uint64 }

type lruCache struct{ m map[string]*entry }

func (c *lruCache) add(k string, e *entry) { c.m[k] = e }

type server struct{ cache *lruCache }

func (s *server) install(k string, e *entry) {
	s.cache.add(k, e)
	_ = certify.Check(e.cost)
}
`,

		// panicsafe: pooled goroutines without recover.
		"internal/pool/pool.go": `package pool

import "sync"

func Work(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	wg.Wait()
}
`,

		// durability: checkpoint error returned as the solve's error.
		"checkpoint/checkpoint.go": `package checkpoint

import "errors"

func Persist(level int) error { return errors.New("disk full") }
`,
		"internal/store/store.go": `package store

import "lintme/checkpoint"

func SaveThenAnswer(level int) (int, error) {
	if err := checkpoint.Persist(level); err != nil {
		return 0, err
	}
	return level * 7, nil
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("running ttlint: %v", err)
	return -1
}

// TestEndToEndSARIF runs the built binary over the seeded module and checks
// the exit code and that every analyzer contributed its finding to the SARIF
// output.
func TestEndToEndSARIF(t *testing.T) {
	bin := buildTool(t)
	mod := seedModule(t)

	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = mod
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	code := exitCode(t, cmd.Run())
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("parsing SARIF: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" {
		t.Fatalf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "ttlint" {
		t.Fatalf("want a single ttlint run, got %+v", log.Runs)
	}
	run := log.Runs[0]

	byRule := map[string]int{}
	for _, res := range run.Results {
		byRule[res.RuleID]++
		if res.Level != "warning" {
			t.Errorf("result level = %q, want warning", res.Level)
		}
		if len(res.Locations) == 0 || res.Locations[0].Physical.Region == nil ||
			res.Locations[0].Physical.Region.StartLine <= 0 {
			t.Errorf("result %q has no usable location", res.Message.Text)
		}
	}
	for _, want := range []string{"flushcheck", "ctxflow", "certorder", "panicsafe", "durability"} {
		if byRule[want] == 0 {
			t.Errorf("no SARIF result from analyzer %q; got %v", want, byRule)
		}
	}
	// Every suite analyzer is declared as a rule even when it has findings
	// from only some of them.
	if len(run.Tool.Driver.Rules) < 5 {
		t.Errorf("driver declares %d rules, want >= 5", len(run.Tool.Driver.Rules))
	}
}

// TestEndToEndSuppression: a well-formed //ttlint:ignore comment silences the
// finding and flips the exit code to clean.
func TestEndToEndSuppression(t *testing.T) {
	bin := buildTool(t)
	mod := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module lintme\n\ngo 1.24\n")
	write("internal/eng/eng.go", `package eng

//ttlint:ignore ctxflow demo entry point, cancellation handled by the process supervisor
func SolveBlind(n int) int { return n * 2 }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if code := exitCode(t, cmd.Run()); code != 0 {
		t.Fatalf("exit code = %d, want 0 after suppression\nstderr: %s", code, stderr.String())
	}
}

// TestVettoolProtocol drives the unitchecker surface directly: the -V=full
// handshake and a hand-built *.cfg for one seeded package.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)
	mod := seedModule(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "ttlint version ") {
		t.Fatalf("-V=full output %q lacks identity prefix", out)
	}

	// Export data for the seeded package's stdlib deps, from the go command.
	list := exec.Command("go", "list", "-e", "-export", "-deps", "-json", "./internal/emit")
	list.Dir = mod
	raw, err := list.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile := map[string]string{}
	var goFiles []string
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var p struct {
			ImportPath string
			Dir        string
			Export     string
			GoFiles    []string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.ImportPath == "lintme/internal/emit" {
			for _, f := range p.GoFiles {
				goFiles = append(goFiles, filepath.Join(p.Dir, f))
			}
		}
	}
	if len(goFiles) == 0 {
		t.Fatal("go list did not surface the seeded package")
	}

	vetx := filepath.Join(t.TempDir(), "emit.vetx")
	cfg := map[string]any{
		"ImportPath":  "lintme/internal/emit",
		"GoFiles":     goFiles,
		"ImportMap":   map[string]string{},
		"PackageFile": packageFile,
		"VetxOnly":    false,
		"VetxOutput":  vetx,
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "emit.cfg")
	if err := os.WriteFile(cfgPath, cfgJSON, 0o666); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, cfgPath)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if code := exitCode(t, cmd.Run()); code != 2 {
		t.Fatalf("cfg mode exit code = %d, want 2 (vet findings)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "Flush error is dropped") {
		t.Fatalf("cfg mode stderr lacks the flushcheck finding:\n%s", stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}
