package core

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestPolicyReachablePruning(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	pol, err := NewPolicy(p, sol)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable states are a subset of all non-empty sets, and must include
	// the universe.
	if pol.States() < 1 || pol.States() >= 1<<p.K {
		t.Fatalf("States = %d", pol.States())
	}
	if _, ok := pol.ActionAt(Universe(p.K)); !ok {
		t.Fatal("no action at the universe")
	}
	// The stored choice matches the solution.
	if idx, _ := pol.ActionAt(Universe(p.K)); int32(idx) != sol.Choice[Universe(p.K)] {
		t.Fatal("root choice mismatch")
	}
	if _, ok := pol.ActionAt(0); ok {
		t.Fatal("empty set has an action")
	}
}

func TestPolicyTreeMatchesSolutionTree(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, rng.Intn(4)+2, rng.Intn(8)+2)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := NewPolicy(p, sol)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := pol.Tree()
		if err != nil {
			t.Fatal(err)
		}
		cost, err := TreeCost(p, tree)
		if err != nil {
			t.Fatal(err)
		}
		if cost != sol.Cost {
			t.Fatalf("trial %d: policy tree costs %d, want %d", trial, cost, sol.Cost)
		}
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	pol, err := NewPolicy(p, sol)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.K != pol.K || back.States() != pol.States() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.K, back.States(), pol.K, pol.States())
	}
	tree, err := back.Tree()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := TreeCost(p, tree)
	if err != nil {
		t.Fatal(err)
	}
	if cost != sol.Cost {
		t.Fatalf("deserialized policy tree costs %d, want %d", cost, sol.Cost)
	}
}

func TestPolicyUnmarshalValidates(t *testing.T) {
	cases := map[string]string{
		"bad k":        `{"k": 0, "actions": [], "choices": {}}`,
		"bad object":   `{"k": 2, "actions": [{"objects": [5], "cost": 1}], "choices": {}}`,
		"bad state":    `{"k": 2, "actions": [{"objects": [0], "cost": 1}], "choices": {"ff": 0}}`,
		"bad index":    `{"k": 2, "actions": [{"objects": [0], "cost": 1}], "choices": {"3": 9}}`,
		"bad statekey": `{"k": 2, "actions": [{"objects": [0], "cost": 1}], "choices": {"zz": 0}}`,
		"not json":     `[]`,
	}
	for name, in := range cases {
		var pol Policy
		if err := json.Unmarshal([]byte(in), &pol); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPolicyInadequateRejected(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{{Set: SetOf(0), Cost: 1, Treatment: true}},
	}
	sol, _ := Solve(p)
	if _, err := NewPolicy(p, sol); err == nil {
		t.Fatal("policy built for inadequate instance")
	}
}

// TestPolicyTreeRejectsNonShrinkingChoices pins the fix for a crash: a
// caller-supplied policy whose choice does not strictly shrink the candidate
// set (a test with S∩T ∈ {∅, S}, or a treatment touching nothing in S) used
// to recurse forever in Tree() — a stack overflow any /v1/eval client could
// trigger with a few lines of JSON. Such choices must be rejected as
// malformed, not followed.
func TestPolicyTreeRejectsNonShrinkingChoices(t *testing.T) {
	cases := map[string]string{
		// Test covering the whole universe: positive branch recurses on S.
		"test covers S": `{"k": 2, "actions": [
			{"objects": [0, 1], "cost": 1},
			{"objects": [0, 1], "cost": 5, "treatment": true}],
			"choices": {"3": 0}}`,
		// Test disjoint from the state: negative branch recurses on S.
		"test misses S": `{"k": 2, "actions": [
			{"objects": [], "cost": 1},
			{"objects": [0, 1], "cost": 5, "treatment": true}],
			"choices": {"3": 0}}`,
		// Treatment treating nothing in the state: failure branch is S again.
		"treat misses S": `{"k": 2, "actions": [
			{"objects": [], "cost": 1, "treatment": true},
			{"objects": [0, 1], "cost": 5, "treatment": true}],
			"choices": {"3": 0}}`,
	}
	for name, in := range cases {
		var pol Policy
		if err := json.Unmarshal([]byte(in), &pol); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		// Must return an error promptly — before the fix this was an
		// unbounded recursion.
		if _, err := pol.Tree(); err == nil {
			t.Errorf("%s: non-shrinking policy accepted", name)
		}
	}
}
