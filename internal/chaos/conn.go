package chaos

import (
	"net"
	"sync"
	"time"
)

// FaultyConn is a net.Conn wrapper that injects the network failures the
// distributed solve plane must survive: added latency, a silent partition
// (writes pretend to succeed, nothing arrives), duplicated frames, and a
// frame truncated mid-write. Both the cluster unit tests and the
// multi-process smoke harness drive the same wrapper, so the fault matrix
// they prove is one matrix. Write counters are 1-based and count calls, not
// bytes: the cluster wire layer writes exactly one frame per Write, so
// "write number n" means "frame number n".
type FaultyConn struct {
	net.Conn

	// Delay pauses before every Write — a slow link or an overloaded peer.
	Delay time.Duration
	// DropAfter makes writes numbered > DropAfter vanish (reported as fully
	// written); 0 disables. A partitioned peer sees silence, not an error —
	// the failure mode only deadlines and heartbeats can catch.
	DropAfter int
	// DuplicateAt sends write number DuplicateAt twice; 0 disables. The
	// receiver must treat the duplicate frame as stale, not re-merge it.
	DuplicateAt int
	// TruncateAt sends only the first half of write number TruncateAt and
	// then drops every later write, leaving a torn frame on the wire exactly
	// like a peer dying mid-send; 0 disables.
	TruncateAt int

	mu     sync.Mutex
	writes int
}

// DelayConn wraps c so every write pauses d first — pure added latency, no
// loss. The straggler-detection shape: slow but honest.
func DelayConn(c net.Conn, d time.Duration) *FaultyConn {
	return &FaultyConn{Conn: c, Delay: d}
}

// PartitionConn wraps c so writes after the first n silently vanish — a
// network partition from the sender's point of view. n = 0 partitions
// immediately.
func PartitionConn(c net.Conn, n int) *FaultyConn {
	if n <= 0 {
		n = -1 // DropAfter 0 disables; drop everything instead
	}
	return &FaultyConn{Conn: c, DropAfter: n}
}

// Writes reports how many Write calls have been attempted.
func (f *FaultyConn) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Write implements net.Conn with the configured faults applied in order:
// delay, truncation, partition, duplication.
func (f *FaultyConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	n := f.writes
	truncate := f.TruncateAt != 0 && n == f.TruncateAt
	drop := (f.DropAfter != 0 && (f.DropAfter < 0 || n > f.DropAfter)) ||
		(f.TruncateAt != 0 && n > f.TruncateAt)
	duplicate := f.DuplicateAt != 0 && n == f.DuplicateAt
	f.mu.Unlock()
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	switch {
	case truncate:
		if _, err := f.Conn.Write(b[:len(b)/2]); err != nil {
			return 0, err
		}
		return len(b), nil // the sender believes the whole frame went out
	case drop:
		return len(b), nil
	case duplicate:
		if _, err := f.Conn.Write(b); err != nil {
			return 0, err
		}
		return f.Conn.Write(b)
	default:
		return f.Conn.Write(b)
	}
}
