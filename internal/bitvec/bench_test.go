package bitvec

import (
	"math/rand"
	"testing"
)

// BenchmarkApply3 measures the three-input combiner over a 2048-bit vector
// (one register row of the r=3 machine) for the truth tables BVM programs
// use most, plus an arbitrary table that exercises the generic path.
func BenchmarkApply3(b *testing.B) {
	cases := []struct {
		name string
		tt   uint8
	}{
		{"copyD", 0xCC},
		{"and", 0xC0},
		{"or", 0xFC},
		{"xor", 0x3C},
		{"mux", 0xD8},
		{"parity", 0x96},
		{"generic", 0x6B},
	}
	r := rand.New(rand.NewSource(1))
	const n = 2048
	x, y, z := randVec(r, n), randVec(r, n), randVec(r, n)
	v := New(n)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.Apply3(c.tt, x, y, z)
			}
		})
	}
}
