package bvm

import (
	"fmt"
	"strconv"
	"strings"
)

// This file parses BVM assembly — the inverse of Program.Disassemble — so
// machine programs can be written, stored and replayed as text in the
// paper's own instruction syntax:
//
//	; optional comment
//	R[5], B = F&D, B (R[3], R[2].L, B) IF {0,2};
//	A, B = D, maj(F,D,B) (A, A.I, B);
//
// Truth tables are the symbolic names the disassembler emits (F, D, B, 0,
// 1, F&D, F|D, F^D, F&~D, ~F, ~D, B?D:F, F^D^B, maj(F,D,B)) or a raw
// tt:XX hex form. Leading line numbers from disassembly listings are
// accepted and ignored, so Disassemble output parses back exactly.

// ParseProgram parses an assembly listing into a Program.
func ParseProgram(name, src string) (*Program, error) {
	p := &Program{Name: name}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 && strings.TrimSpace(line[:i]) == "" {
			continue // pure comment line
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := ParseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("bvm: line %d: %w", lineNo+1, err)
		}
		p.Instrs = append(p.Instrs, *in)
	}
	return p, nil
}

// ParseInstr parses a single instruction, with or without the trailing
// semicolon and with an optional leading listing index.
func ParseInstr(line string) (*Instr, error) {
	s := strings.TrimSpace(line)
	// Optional leading listing index ("  12  A, B = ...").
	if i := strings.IndexByte(s, ' '); i > 0 {
		if _, err := strconv.Atoi(s[:i]); err == nil {
			s = strings.TrimSpace(s[i:])
		}
	}
	s = strings.TrimSuffix(strings.TrimSpace(s), ";")

	lhsRhs := strings.SplitN(s, "=", 2)
	if len(lhsRhs) != 2 {
		return nil, fmt.Errorf("missing '=' in %q", line)
	}
	lhsParts := strings.Split(strings.TrimSpace(lhsRhs[0]), ",")
	if len(lhsParts) != 2 || strings.TrimSpace(lhsParts[1]) != "B" {
		return nil, fmt.Errorf("destination must be '<reg>, B', got %q", lhsRhs[0])
	}
	dst, err := parseRegRef(strings.TrimSpace(lhsParts[0]))
	if err != nil {
		return nil, err
	}

	// The operand list is the last balanced parenthesis group (truth-table
	// names like maj(F,D,B) contain parentheses of their own).
	rhs := strings.TrimSpace(lhsRhs[1])
	closeIdx := strings.LastIndexByte(rhs, ')')
	if closeIdx < 0 {
		return nil, fmt.Errorf("missing operand list in %q", line)
	}
	depth := 0
	open := -1
	for i := closeIdx; i >= 0; i-- {
		switch rhs[i] {
		case ')':
			depth++
		case '(':
			depth--
			if depth == 0 {
				open = i
			}
		}
		if open >= 0 {
			break
		}
	}
	if open < 0 {
		return nil, fmt.Errorf("unbalanced operand list in %q", line)
	}
	ttPart := strings.TrimSpace(rhs[:open])
	operandPart := rhs[open+1 : closeIdx]
	condPart := strings.TrimSpace(rhs[closeIdx+1:])

	tts := splitTopLevel(ttPart)
	if len(tts) != 2 {
		return nil, fmt.Errorf("want two truth tables 'f, g', got %q", ttPart)
	}
	ftt, err := parseTT(strings.TrimSpace(tts[0]))
	if err != nil {
		return nil, err
	}
	gtt, err := parseTT(strings.TrimSpace(tts[1]))
	if err != nil {
		return nil, err
	}

	ops := splitTopLevel(operandPart)
	if len(ops) != 3 {
		return nil, fmt.Errorf("want three operands '(F, D, B)', got %q", operandPart)
	}
	if strings.TrimSpace(ops[2]) != "B" {
		return nil, fmt.Errorf("third operand must be B, got %q", ops[2])
	}
	fRef, err := parseRegRef(strings.TrimSpace(ops[0]))
	if err != nil {
		return nil, err
	}
	dOp, err := parseOperand(strings.TrimSpace(ops[1]))
	if err != nil {
		return nil, err
	}

	in := &Instr{Dst: dst, FTT: ftt, GTT: gtt, F: fRef, D: dOp}
	if condPart != "" {
		cond, err := parseActivation(condPart)
		if err != nil {
			return nil, err
		}
		in.Cond = cond
	}
	return in, nil
}

// splitTopLevel splits on commas not inside parentheses (for maj(F,D,B)).
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseRegRef(s string) (RegRef, error) {
	switch s {
	case "A":
		return A, nil
	case "B":
		return B, nil
	case "E":
		return E, nil
	}
	if inner, ok := strings.CutPrefix(s, "R["); ok {
		if num, ok := strings.CutSuffix(inner, "]"); ok {
			j, err := strconv.Atoi(num)
			if err != nil || j < 0 {
				return RegRef{}, fmt.Errorf("bad register index %q", num)
			}
			return R(j), nil
		}
	}
	return RegRef{}, fmt.Errorf("bad register %q", s)
}

func parseOperand(s string) (Operand, error) {
	routes := []struct {
		suffix string
		route  Route
	}{
		{".XS", RouteXS}, {".XP", RouteXP}, {".S", RouteS},
		{".P", RouteP}, {".L", RouteL}, {".I", RouteI},
	}
	for _, r := range routes {
		if base, ok := strings.CutSuffix(s, r.suffix); ok {
			reg, err := parseRegRef(base)
			if err != nil {
				return Operand{}, err
			}
			return Via(reg, r.route), nil
		}
	}
	reg, err := parseRegRef(s)
	if err != nil {
		return Operand{}, err
	}
	return Loc(reg), nil
}

func parseTT(s string) (uint8, error) {
	switch s {
	case "0":
		return TTZero, nil
	case "1":
		return TTOne, nil
	case "F":
		return TTF, nil
	case "D":
		return TTD, nil
	case "B":
		return TTB, nil
	case "F&D":
		return TTAndFD, nil
	case "F|D":
		return TTOrFD, nil
	case "F^D":
		return TTXorFD, nil
	case "F&~D":
		return TTAndNotFD, nil
	case "~F":
		return TTNotF, nil
	case "~D":
		return TTNotD, nil
	case "B?D:F":
		return TTMuxB, nil
	case "F^D^B":
		return TTParity, nil
	case "maj(F,D,B)":
		return TTMajority, nil
	}
	if hexPart, ok := strings.CutPrefix(s, "tt:"); ok {
		v, err := strconv.ParseUint(hexPart, 16, 8)
		if err != nil {
			return 0, fmt.Errorf("bad truth table %q", s)
		}
		return uint8(v), nil
	}
	return 0, fmt.Errorf("unknown truth table %q", s)
}

func parseActivation(s string) (*Activation, error) {
	var negate bool
	switch {
	case strings.HasPrefix(s, "IF"):
		s = strings.TrimSpace(strings.TrimPrefix(s, "IF"))
	case strings.HasPrefix(s, "NF"):
		negate = true
		s = strings.TrimSpace(strings.TrimPrefix(s, "NF"))
	default:
		return nil, fmt.Errorf("activation must start with IF or NF, got %q", s)
	}
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("activation set must be braced, got %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	act := &Activation{Negate: negate}
	if body == "" {
		return act, nil
	}
	for _, part := range strings.Split(body, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad activation position %q", part)
		}
		act.Positions = append(act.Positions, v)
	}
	return act, nil
}
