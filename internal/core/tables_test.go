package core

import (
	"math/rand"
	"testing"
)

// TestSolveSteadyStateAllocs pins the pooled steady state: once the per-size
// pools are warm, a solve-release cycle performs only constant bookkeeping
// allocations (the Solution struct and the pool's pointer boxes), never a
// fresh 2^k table. The bound of 8 is deliberately loose against Go runtime
// jitter while still catching any reintroduced table allocation, which would
// add at least 3 allocs and ~100KB at k=12.
func TestSolveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randomProblem(rng, 12, 8)
	warm := func() {
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		sol.Release()
	}
	warm()
	warm()
	avg := testing.AllocsPerRun(20, warm)
	if avg > 8 {
		t.Fatalf("steady-state solve-release cycle allocates %.1f objects/op, want <= 8 (table pooling broken?)", avg)
	}

	lpWarm := func() {
		sol, err := SolveLevelPair(p)
		if err != nil {
			t.Fatal(err)
		}
		sol.Release()
	}
	lpWarm()
	lpWarm()
	if avg := testing.AllocsPerRun(20, lpWarm); avg > 8 {
		t.Fatalf("steady-state level-pair cycle allocates %.1f objects/op, want <= 8", avg)
	}
}

// TestTableKBounds pins the pool-size guard: non-power-of-two and oversized
// tables are never pooled (Release just drops them).
func TestTableKBounds(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1}, {1, 0}, {2, 1}, {3, -1}, {1024, 10}, {1 << MaxK, MaxK},
	}
	for _, c := range cases {
		if got := tableK(c.n); got != c.want {
			t.Fatalf("tableK(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Releasing odd-length tables must not panic or poison the pools.
	s := &Solution{C: make([]uint64, 3), Choice: make([]int32, 5), PSum: nil}
	s.Release()
	var nilSol *Solution
	nilSol.Release() // nil-safe
}
