// Command ttgen emits test-and-treatment instances from the synthetic
// workload generators, in the JSON format cmd/ttsolve consumes.
//
// Usage:
//
//	ttgen -domain medical -k 10 -seed 7 > instance.json
//	ttgen -domain fault -k 12 -board 4
//	ttgen -domain biology -k 8
//	ttgen -domain binary -k 16
//	ttgen -domain random -k 8 -tests 6 -treatments 4
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/workload"
)

// run buffers the emitted instance and surfaces the flush error: a full disk
// must exit nonzero, not leave a truncated JSON file that parses as garbage.
func run(args []string, stdout io.Writer) error {
	out := bufio.NewWriter(stdout)
	err := generate(args, out)
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("ttgen: writing instance: %w", ferr)
	}
	return err
}

func generate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ttgen", flag.ContinueOnError)
	domain := fs.String("domain", "medical", "workload: medical, fault, biology, laboratory, logistics, binary, random")
	k := fs.Int("k", 8, "universe size (number of objects)")
	seed := fs.Int64("seed", 1, "generator seed")
	board := fs.Int("board", 4, "board size (fault domain)")
	tests := fs.Int("tests", 6, "test count (random domain)")
	treatments := fs.Int("treatments", 4, "treatment count (random domain)")
	treatCost := fs.Uint64("treatcost", 60, "terminal treatment cost (binary domain)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p       *core.Problem
		comment string
	)
	switch *domain {
	case "medical":
		p = workload.MedicalDiagnosis(*seed, *k)
		comment = fmt.Sprintf("medical diagnosis, %d diseases, seed %d", *k, *seed)
	case "fault":
		p = workload.FaultLocation(*seed, *k, *board)
		comment = fmt.Sprintf("machine fault location, %d components, boards of %d, seed %d", *k, *board, *seed)
	case "biology":
		p = workload.SystematicBiology(*seed, *k)
		comment = fmt.Sprintf("systematic biology identification key, %d taxa, seed %d", *k, *seed)
	case "laboratory":
		p = workload.LaboratoryAnalysis(*seed, *k)
		comment = fmt.Sprintf("laboratory analysis, %d analytes, seed %d", *k, *seed)
	case "logistics":
		p = workload.Logistics(*seed, *k, *board)
		comment = fmt.Sprintf("logistics breakdown correction, %d subsystems, assemblies of %d, seed %d", *k, *board, *seed)
	case "binary":
		p = workload.BinaryTestingUniform(*k, *treatCost)
		comment = fmt.Sprintf("uniform binary testing, %d objects", *k)
	case "random":
		p = workload.Random(*seed, *k, *tests, *treatments)
		comment = fmt.Sprintf("random instance, %d objects, seed %d", *k, *seed)
	default:
		return fmt.Errorf("ttgen: unknown domain %q", *domain)
	}
	return instio.Write(stdout, p, comment)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
