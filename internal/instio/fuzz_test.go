package instio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the instance parser: it must never panic
// and every accepted instance must survive a write/read round trip intact.
func FuzzRead(f *testing.F) {
	f.Add(`{"weights":[1,2],"actions":[{"objects":[0,1],"cost":3,"treatment":true}]}`)
	f.Add(`{"weights":[],"actions":[]}`)
	f.Add(`{`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, p, ""); err != nil {
			t.Fatalf("accepted instance failed to serialize: %v", err)
		}
		q, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized instance failed to parse: %v\n%s", err, buf.String())
		}
		if q.K != p.K || len(q.Actions) != len(p.Actions) {
			t.Fatal("round trip changed instance shape")
		}
	})
}
