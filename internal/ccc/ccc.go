// Package ccc models the cube-connected-cycles interconnection network that
// underlies the Boolean Vector Machine (paper §2).
//
// Following the paper, the geometry is parameterized by a positive integer r:
// the cycle length is Q = 2^r, there are 2^Q cycles, and the machine has
// n = Q·2^Q processing elements. PE (i, j) — cycle i, position j — has flat
// address i·2^r + j. Within its cycle it is connected to its predecessor
// (i, (j+Q-1) mod Q) and successor (i, (j+1) mod Q); its single lateral link
// goes to (i XOR 2^j, j), the PE in the cycle whose number differs in bit j.
// A CCC therefore has exactly 3n/2 undirected links (for Q >= 4; Q = 2
// degenerates because predecessor and successor coincide), versus the
// n·log2(n)/2 links a hypercube of the same size would need — the paper's
// central hardware-economy argument.
//
// The package also defines the machine's remaining SIMD operand routes:
// XS/XP (the even successor/predecessor exchanges used to shuffle data inside
// cycles, realizing the "lowsheaves" of the hypercube simulation) and the
// I/O chain that threads all PEs in (cycle, position) lexicographic order.
package ccc

import "fmt"

// Topology describes one CCC machine size.
type Topology struct {
	R        int // bits of in-cycle position; j in [0, Q)
	Q        int // cycle length, Q = 2^R
	Cycles   int // number of cycles, 2^Q
	N        int // total PEs, Q * 2^Q
	AddrBits int // Q + R: bits of a flat PE address
}

// MaxR bounds machine size: r = 5 would mean Q = 32, 2^32 cycles — beyond
// simulation. r = 4 is the paper's "currently implementable" 2^20-PE machine.
const MaxR = 4

// New returns the topology for parameter r. Valid r is 1..MaxR, giving
// machines of 8, 64, 2048, and 1048576 PEs.
func New(r int) (*Topology, error) {
	if r < 1 || r > MaxR {
		return nil, fmt.Errorf("ccc: r must be in [1,%d], got %d", MaxR, r)
	}
	q := 1 << r
	return &Topology{
		R:        r,
		Q:        q,
		Cycles:   1 << q,
		N:        q << q,
		AddrBits: q + r,
	}, nil
}

// ForPEs returns the smallest topology with at least n PEs.
func ForPEs(n int) (*Topology, error) {
	for r := 1; r <= MaxR; r++ {
		t, err := New(r)
		if err != nil {
			return nil, err
		}
		if t.N >= n {
			return t, nil
		}
	}
	return nil, fmt.Errorf("ccc: no supported topology with >= %d PEs (max %d)", n, (1<<MaxR)<<(1<<MaxR))
}

// Addr returns the flat address of PE (cycle, pos).
func (t *Topology) Addr(cycle, pos int) int {
	if cycle < 0 || cycle >= t.Cycles || pos < 0 || pos >= t.Q {
		panic(fmt.Sprintf("ccc: PE (%d,%d) out of range (%d cycles of %d)", cycle, pos, t.Cycles, t.Q))
	}
	return cycle<<t.R | pos
}

// Split decomposes a flat address into (cycle, pos).
func (t *Topology) Split(addr int) (cycle, pos int) {
	if addr < 0 || addr >= t.N {
		panic(fmt.Sprintf("ccc: address %d out of range [0,%d)", addr, t.N))
	}
	return addr >> t.R, addr & (t.Q - 1)
}

// Succ returns the flat address of the successor (i, (j+1) mod Q).
func (t *Topology) Succ(addr int) int {
	c, p := t.Split(addr)
	return c<<t.R | (p+1)&(t.Q-1)
}

// Pred returns the flat address of the predecessor (i, (j+Q-1) mod Q).
func (t *Topology) Pred(addr int) int {
	c, p := t.Split(addr)
	return c<<t.R | (p+t.Q-1)&(t.Q-1)
}

// Lateral returns the flat address of the lateral neighbor (i XOR 2^j, j),
// the other end of the PE's single inter-cycle link.
func (t *Topology) Lateral(addr int) int {
	c, p := t.Split(addr)
	return (c^(1<<p))<<t.R | p
}

// XS returns the even-successor exchange partner: position j XOR 1, pairing
// positions (0,1), (2,3), ... within the cycle.
func (t *Topology) XS(addr int) int {
	c, p := t.Split(addr)
	return c<<t.R | p ^ 1
}

// XP returns the even-predecessor exchange partner: the predecessor for even
// j and the successor for odd j, pairing positions (1,2), (3,4), ...,
// (Q-1, 0).
func (t *Topology) XP(addr int) int {
	c, p := t.Split(addr)
	if p&1 == 0 {
		return c<<t.R | (p+t.Q-1)&(t.Q-1)
	}
	return c<<t.R | (p+1)&(t.Q-1)
}

// IOPrev returns the PE a given PE reads from during an I (input) step, or -1
// for PE (0,0), which reads the external input bit. The I route threads the
// machine in (cycle, position) lexicographic order, which for flat addresses
// is simply addr-1; PE (2^Q - 1, Q-1) holds the output end.
func (t *Topology) IOPrev(addr int) int {
	if addr < 0 || addr >= t.N {
		panic(fmt.Sprintf("ccc: address %d out of range [0,%d)", addr, t.N))
	}
	return addr - 1
}

// NeighborKind names one of the machine's operand routes.
type NeighborKind int

const (
	KindSucc NeighborKind = iota
	KindPred
	KindLateral
	KindXS
	KindXP
)

func (k NeighborKind) String() string {
	switch k {
	case KindSucc:
		return "S"
	case KindPred:
		return "P"
	case KindLateral:
		return "L"
	case KindXS:
		return "XS"
	case KindXP:
		return "XP"
	}
	return fmt.Sprintf("NeighborKind(%d)", int(k))
}

// Neighbor returns the partner of addr under route k.
func (t *Topology) Neighbor(k NeighborKind, addr int) int {
	switch k {
	case KindSucc:
		return t.Succ(addr)
	case KindPred:
		return t.Pred(addr)
	case KindLateral:
		return t.Lateral(addr)
	case KindXS:
		return t.XS(addr)
	case KindXP:
		return t.XP(addr)
	}
	panic(fmt.Sprintf("ccc: unknown neighbor kind %d", int(k)))
}

// Perm returns the read permutation for route k: perm[x] = the PE whose value
// PE x receives when the route is used as an instruction operand. The slice
// is freshly allocated; callers may cache it.
func (t *Topology) Perm(k NeighborKind) []int32 {
	perm := make([]int32, t.N)
	for x := 0; x < t.N; x++ {
		perm[x] = int32(t.Neighbor(k, x))
	}
	return perm
}

// Link is an undirected edge between two PEs, with From < To.
type Link struct{ From, To int }

// Links enumerates every distinct undirected link of the machine: the cycle
// edges plus the lateral edges.
func (t *Topology) Links() []Link {
	seen := make(map[Link]bool)
	var links []Link
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		l := Link{a, b}
		if !seen[l] {
			seen[l] = true
			links = append(links, l)
		}
	}
	for x := 0; x < t.N; x++ {
		add(x, t.Succ(x))
		add(x, t.Pred(x))
		add(x, t.Lateral(x))
	}
	return links
}

// LinkCount returns the number of distinct undirected links without
// enumerating them: n lateral ends give n/2 lateral links; each cycle of
// length Q contributes Q edges (1 when Q = 2, where succ == pred).
func (t *Topology) LinkCount() int {
	cycleEdges := t.Q
	if t.Q == 2 {
		cycleEdges = 1
	}
	return t.Cycles*cycleEdges + t.N/2
}

// HypercubeLinkCount returns the link count of a hypercube on n = 2^dim PEs:
// n·dim/2. This is the comparison machine of the paper's introduction.
func HypercubeLinkCount(dim int) int {
	return (1 << dim) * dim / 2
}

// Connected reports whether the network is connected, by BFS over all links.
// Intended for tests and small machines; it allocates O(n) state.
func (t *Topology) Connected() bool {
	visited := make([]bool, t.N)
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range []int{t.Succ(x), t.Pred(x), t.Lateral(x)} {
			if !visited[y] {
				visited[y] = true
				count++
				queue = append(queue, y)
			}
		}
	}
	return count == t.N
}

func (t *Topology) String() string {
	return fmt.Sprintf("CCC(r=%d): %d cycles of %d PEs, n=%d, %d links", t.R, t.Cycles, t.Q, t.N, t.LinkCount())
}

// Diameter computes the network diameter by BFS from every PE. Exponential
// in machine size; intended for tests on r <= 2. Preparata and Vuillemin
// bound the CCC diameter by roughly 2.5·Q.
func (t *Topology) Diameter() int {
	diam := 0
	dist := make([]int, t.N)
	for src := 0; src < t.N; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range []int{t.Succ(x), t.Pred(x), t.Lateral(x)} {
				if dist[y] < 0 {
					dist[y] = dist[x] + 1
					if dist[y] > diam {
						diam = dist[y]
					}
					queue = append(queue, y)
				}
			}
		}
	}
	return diam
}
