package bvmcheck

import (
	"testing"

	"repro/internal/bvm"
)

func TestTTDeps(t *testing.T) {
	cases := []struct {
		tt      uint8
		f, d, b bool
	}{
		{bvm.TTZero, false, false, false},
		{bvm.TTOne, false, false, false},
		{bvm.TTF, true, false, false},
		{bvm.TTD, false, true, false},
		{bvm.TTB, false, false, true},
		{bvm.TTAndFD, true, true, false},
		{bvm.TTMuxB, true, true, true},
		{bvm.TTParity, true, true, true},
		{bvm.TTMajority, true, true, true},
		{bvm.TTNotF, true, false, false},
	}
	for _, c := range cases {
		f, d, b := ttDeps(c.tt)
		if f != c.f || d != c.d || b != c.b {
			t.Errorf("ttDeps(%#02x) = %v %v %v, want %v %v %v", c.tt, f, d, b, c.f, c.d, c.b)
		}
	}
}

func TestMatchClearSet(t *testing.T) {
	// r = 2, Q = 4: dim 0 clear set {0, 2}, dim 1 clear set {0, 1}.
	if d, ok := matchClearSet([]int{0, 2}, 2, 4); !ok || d != 0 {
		t.Errorf("clear set {0,2}: got dim %d ok %v, want 0 true", d, ok)
	}
	if d, ok := matchClearSet([]int{1, 0}, 2, 4); !ok || d != 1 {
		t.Errorf("clear set {1,0}: got dim %d ok %v, want 1 true", d, ok)
	}
	for _, bad := range [][]int{{0}, {0, 1, 2}, {0, 3}, {2, 2}, {0, 4}, {-1, 0}} {
		if _, ok := matchClearSet(bad, 2, 4); ok {
			t.Errorf("positions %v unexpectedly matched a clear set", bad)
		}
	}
}

func TestInstrEffectsTruthTableAware(t *testing.T) {
	a := newAnalysis(Config{Registers: 8})
	// SetConst: f = 1 reads nothing despite naming A twice.
	eff := a.instrEffects(bvm.Instr{Dst: bvm.R(3), FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A)}, false)
	if len(eff.reads) != 0 || eff.dstID != 3 || !eff.dstFull || eff.writesB {
		t.Errorf("SetConst effects = %+v, want no reads, full write of R[3], no B write", eff)
	}
	// AddStep: parity/majority read F, D, B and write both halves.
	eff = a.instrEffects(bvm.Instr{Dst: bvm.R(0), FTT: bvm.TTParity, GTT: bvm.TTMajority, F: bvm.R(1), D: bvm.Loc(bvm.R(2))}, false)
	if len(eff.reads) != 3 || !eff.writesB || !eff.bFull {
		t.Errorf("AddStep effects = %+v, want 3 reads and a full B write", eff)
	}
	// Masked move: the destination's old value is read.
	eff = a.instrEffects(bvm.Instr{Dst: bvm.R(0), FTT: bvm.TTD, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.R(2)), Cond: bvm.IF(1)}, false)
	if eff.dstFull {
		t.Error("masked write reported as full")
	}
	found := false
	for _, r := range eff.reads {
		if r == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("masked write does not read its destination: reads %v", eff.reads)
	}
	// E destination: untracked, always a full write.
	eff = a.instrEffects(bvm.Instr{Dst: bvm.E, FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A), Cond: bvm.IF(0)}, false)
	if eff.dstID != -1 {
		t.Errorf("E destination tracked as id %d", eff.dstID)
	}
	// Self-shift streaming: the routed self-read is exempt.
	eff = a.instrEffects(bvm.Instr{Dst: bvm.R(5), FTT: bvm.TTD, GTT: bvm.TTB, F: bvm.A, D: bvm.Via(bvm.R(5), bvm.RouteI)}, false)
	if eff.exemptRead != 5 {
		t.Errorf("self-shift exempt read = %d, want 5", eff.exemptRead)
	}
}
