// Package bvmtt runs the paper's test-and-treatment algorithm as an actual
// Boolean Vector Machine program: every step of the §6 ASCEND algorithm —
// processor-ID generation, streaming the problem in through the input chain,
// the p(S) subset sums, the TP = t_i·p(S) bit-serial multiplication, the
// group-mark propagation, the R/Q broadcast loops with their e ∈ S∩T_i /
// e ∈ S−T_i control bits, and the log N minimization — is emitted as BVM
// instructions (internal/bvm via internal/bvmalg) and executed on the
// simulated machine. This is the paper's §7 implementation scheme made
// concrete; results are cross-checked against the sequential DP in the test
// suite (experiment E13).
//
// Costs are Width-bit saturating integers with all-ones as infinity, exactly
// the bit-serial arithmetic a hardware BVM would run; choose Width with
// SuggestWidth so no finite cost saturates, and the program's outputs equal
// the uint64 DP's bit for bit.
package bvmtt

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/ccc"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/stripe"
)

// MaxDim caps the bit-level simulation at the 2048-PE machine (r = 3); the
// 2^20-PE machine the paper calls "currently implementable" would need hours
// of host time per run at bit level.
const MaxDim = 11

// Result is the output of a BVM TT run.
type Result struct {
	// Cost is C(U) with the word infinity mapped back to core.Inf.
	Cost uint64
	// C[s] is C(S) per subset, Inf-mapped like Cost.
	C []uint64
	// Instructions is the exact BVM instruction count of the whole program,
	// including input streaming.
	Instructions int64
	// LoadInstructions is the portion spent streaming the problem in.
	LoadInstructions int64
	// Phases breaks the instruction count down by program phase, in
	// execution order: processor-id, load, p(S), tp-multiply, rounds.
	Phases   []Phase
	PEs      int
	Width    int
	LogN     int
	MachineR int
	// Program is the recorded instruction stream of the whole run, set only
	// by SolveRecorded. Replaying it on a fresh machine of the same geometry
	// re-executes every instruction (external input bits consumed through
	// the I chain read as zeros on replay, so register contents differ, but
	// instruction and route counts are reproduced exactly — the property the
	// static cost checker in internal/bvmcheck relies on).
	Program *bvm.Program
	// Repairs counts ABFT round repairs: barriers where verification failed,
	// the machine was rebuilt from the trusted mirror by host pokes, and the
	// round re-ran successfully. Always 0 unless Options.Verify is set.
	Repairs int
}

// Phase is one section of the TT program's instruction budget.
type Phase struct {
	Name         string
	Instructions int64
}

// SuggestWidth returns a word width sufficient for every finite C(S): the
// sequence "apply every treatment" is a valid procedure for any candidate
// set, so (Σ treatment costs)·p(U) bounds all finite DP values.
func SuggestWidth(p *core.Problem) int {
	var tsum uint64
	for _, a := range p.Actions {
		if a.Treatment {
			tsum = core.SatAdd(tsum, a.Cost)
		}
	}
	bound := core.SatMul(tsum, p.TotalWeight())
	w := 1
	for ; w < 60 && 1<<uint(w)-1 <= bound; w++ {
	}
	return w + 1
}

type layout struct {
	addr        int // q regs: processor-ID
	tmem        int // k regs: e ∈ T_i
	istreat     int
	padded      int
	mark, rcv   int
	cond, cond2 int
	cost        bvmalg.Word
	ps          bvmalg.Word
	m, tp, r, q bvmalg.Word
	sh1, sh2    bvmalg.Word
	tmp1, tmp2  bvmalg.Word
	scratch     int // FetchPartner / MulSatWord scratch: 2W+2 regs
}

func planLayout(q, k, w int) (layout, error) {
	next := 0
	alloc := func(n int) int {
		base := next
		next += n
		return base
	}
	word := func() bvmalg.Word { return bvmalg.Word{Base: alloc(w), Width: w} }
	lay := layout{
		addr:    alloc(q),
		tmem:    alloc(k),
		istreat: alloc(1),
		padded:  alloc(1),
		mark:    alloc(1),
		rcv:     alloc(1),
		cond:    alloc(1),
		cond2:   alloc(1),
		cost:    word(),
		ps:      word(),
	}
	lay.m, lay.tp, lay.r, lay.q = word(), word(), word(), word()
	lay.sh1, lay.sh2 = word(), word()
	lay.tmp1, lay.tmp2 = word(), word()
	lay.scratch = alloc(2*w + 2)
	if next > bvm.DefaultRegisters {
		return lay, fmt.Errorf("bvmtt: layout needs %d registers, machine has %d (reduce width %d)",
			next, bvm.DefaultRegisters, w)
	}
	return lay, nil
}

// Options bundles the optional plumbing of a BVM solve.
type Options struct {
	// Width is the cost word width in bits; 0 means SuggestWidth(p).
	Width int
	// Record captures the executed instruction stream into Result.Program.
	Record bool
	// Frontier resumes from a restored level frontier (cost-only suffices).
	Frontier *core.Frontier
	// Checkpointer fires after every completed round j < K.
	Checkpointer core.Checkpointer
	// Verify enables the ABFT layer (abft.go): running checksums over the
	// frozen M word plane plus direct host verification of the new level,
	// the mark register, and the PS/TP planes at every round barrier, with
	// one poke-repair-and-re-run before refusing with a certify.LevelError.
	// With a healthy machine the result is bit-identical to an unverified
	// run (Repairs = 0).
	Verify bool
	// Stripe, when non-nil, shards the machine's word-plane execution across
	// the pool (bvm.Machine.SetStriped). Striping is gated on the machine
	// being at least StripeMinWords words wide, so small geometries run the
	// scalar kernels unchanged; results are bit-identical either way, and the
	// ABFT verify/repair layer observes identical state at every barrier.
	Stripe *stripe.Pool
	// StripeMinWords overrides the striping threshold (0 means
	// bvm.DefaultStripeMinWords). Tests use 1 to force the pool path on the
	// small machines MaxDim admits.
	StripeMinWords int
}

// Solve runs the TT program on the smallest BVM that fits the instance.
// width 0 means SuggestWidth(p).
func Solve(p *core.Problem, width int) (*Result, error) {
	return solve(context.Background(), p, Options{Width: width})
}

// SolveOpts runs the TT program with the full option set.
func SolveOpts(ctx context.Context, p *core.Problem, opt Options) (*Result, error) {
	return solve(ctx, p, opt)
}

// SolveCtx is Solve with cancellation: the context is polled between the
// program's phases and at every round j = 1..k of the main loop, so a
// deadline stops a long bit-level simulation between rounds instead of
// after the whole program has run.
func SolveCtx(ctx context.Context, p *core.Problem, width int) (*Result, error) {
	return solve(ctx, p, Options{Width: width})
}

// SolveCheckpointedCtx is SolveCtx with durable-solve plumbing. A non-nil
// frontier skips rounds 1..f.Level by host-poking the state those rounds
// would have left on the machine — the M plane of every completed group and
// the #S = f.Level mark register; the program phases before the main loop
// (load, p(S), TP) re-execute as BVM instructions and are deterministic. A
// cost-only frontier suffices: the BVM program tracks no argmins. A non-nil
// ck fires after every round j < k with the cost plane read off the machine
// (Solution.Choice nil). Costs are bit-identical to an uninterrupted run;
// instruction counts reflect only the rounds actually executed.
func SolveCheckpointedCtx(ctx context.Context, p *core.Problem, width int, f *core.Frontier, ck core.Checkpointer) (*Result, error) {
	return solve(ctx, p, Options{Width: width, Frontier: f, Checkpointer: ck})
}

// SolveRecorded is Solve with instruction capture: Result.Program holds the
// complete recorded program, ready for static analysis (bvmcheck) or replay.
func SolveRecorded(p *core.Problem, width int) (*Result, error) {
	return solve(context.Background(), p, Options{Width: width, Record: true})
}

// SolveRecordedCtx is SolveRecorded with the cancellation behaviour of
// SolveCtx.
func SolveRecordedCtx(ctx context.Context, p *core.Problem, width int) (*Result, error) {
	return solve(ctx, p, Options{Width: width, Record: true})
}

func solve(ctx context.Context, p *core.Problem, opt Options) (*Result, error) {
	width, record, f, ck := opt.Width, opt.Record, opt.Frontier, opt.Checkpointer
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if width == 0 {
		width = SuggestWidth(p)
	}
	if width < 2 || width > 32 {
		return nil, fmt.Errorf("bvmtt: width %d outside [2,32]", width)
	}
	k := p.K
	if f != nil {
		if err := f.Validate(k); err != nil {
			return nil, err
		}
	}
	minLogN := 1
	for 1<<uint(minLogN) < len(p.Actions) {
		minLogN++
	}
	minDim := k + minLogN
	if minDim > MaxDim {
		return nil, fmt.Errorf("bvmtt: instance needs 2^%d PEs, bit-level cap is 2^%d", minDim, MaxDim)
	}
	top, err := ccc.ForPEs(1 << uint(minDim))
	if err != nil {
		return nil, err
	}
	q := top.AddrBits
	logN := q - k
	if logN < 1 {
		return nil, fmt.Errorf("bvmtt: universe of %d objects leaves no action bits on a %d-PE machine", k, top.N)
	}
	lay, err := planLayout(q, k, width)
	if err != nil {
		return nil, err
	}
	m, err := bvm.New(top.R, bvm.DefaultRegisters)
	if err != nil {
		return nil, err
	}
	if opt.Stripe != nil {
		m.SetStriped(opt.Stripe, opt.StripeMinWords)
	}
	if machineHook != nil {
		machineHook(m)
	}
	if record {
		m.StartRecording(fmt.Sprintf("tt-k%d-n%d-w%d", k, len(p.Actions), width))
	}

	// Pad the action table to 2^logN with dummy entries (paper §6: infinite-
	// cost treatments T = U).
	actions := append([]core.Action(nil), p.Actions...)
	nReal := len(actions)
	for len(actions) < 1<<uint(logN) {
		actions = append(actions, core.Action{Set: core.Universe(k), Treatment: true})
	}

	inf := bvmalg.Word{Width: width}.MaxValue()
	for _, a := range p.Actions {
		if a.Cost >= inf {
			return nil, fmt.Errorf("bvmtt: action cost %d saturates %d-bit words", a.Cost, width)
		}
	}

	// --- program ---
	phaseStart := m.InstrCount
	var phases []Phase
	endPhase := func(name string) {
		phases = append(phases, Phase{Name: name, Instructions: m.InstrCount - phaseStart})
		phaseStart = m.InstrCount
	}

	bvmalg.ProcessorID(m, lay.addr)
	endPhase("processor-id")

	loadStart := m.InstrCount
	streamPlane(m, bvm.R(lay.istreat), func(i int) uint64 { return b2u(actions[i].Treatment) }, logN)
	streamPlane(m, bvm.R(lay.padded), func(i int) uint64 { return b2u(i >= nReal) }, logN)
	for e := 0; e < k; e++ {
		e := e
		streamPlane(m, bvm.R(lay.tmem+e), func(i int) uint64 { return b2u(actions[i].Set.Has(e)) }, logN)
	}
	for b := 0; b < width; b++ {
		b := b
		streamPlane(m, lay.cost.Bit(b), func(i int) uint64 { return actions[i].Cost >> uint(b) & 1 }, logN)
	}
	load := m.InstrCount - loadStart
	endPhase("load")
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// p(S): ASCEND over the S-dimensions accumulating per-element weights.
	bvmalg.SetWordConst(m, lay.ps, 0)
	for e := 0; e < k; e++ {
		bvmalg.FetchPartner(m, logN+e, bvmalg.WordPairs(lay.ps, lay.sh1), lay.scratch)
		bvmalg.SetWordConst(m, lay.tmp2, p.Weights[e])
		bvmalg.AddSatWord(m, lay.tmp1, lay.sh1, lay.tmp2)
		bvmalg.CondCopyWord(m, lay.ps, lay.tmp1, bvm.R(lay.addr+logN+e))
	}

	endPhase("p(S)")

	// TP = t_i · p(S).
	bvmalg.MulSatWord(m, lay.tp, lay.cost, lay.ps, lay.scratch)
	endPhase("tp-multiply")

	// M = INF except M[∅,i] = 0; the ∅ group carries the initial mark.
	bvmalg.SetWordConst(m, lay.m, inf)
	m.SetConst(bvm.R(lay.cond), false)
	for b := logN; b < q; b++ {
		m.Or(bvm.R(lay.cond), bvm.R(lay.cond), bvm.Loc(bvm.R(lay.addr+b)))
	}
	m.Not(bvm.R(lay.mark), bvm.R(lay.cond)) // mark = (S == ∅)
	for b := 0; b < width; b++ {
		m.And(lay.m.Bit(b), lay.m.Bit(b), bvm.Loc(bvm.R(lay.cond))) // clear where S == ∅
	}

	markPair := []bvmalg.Pair{{Src: bvm.R(lay.mark), Shadow: bvm.R(lay.cond2)}}
	rqPairs := append(bvmalg.WordPairs(lay.r, lay.sh1), bvmalg.WordPairs(lay.q, lay.sh2)...)

	startRound := 1
	if f != nil {
		// Restore the machine to its state after round f.Level. The min-reduce
		// of step (5) is an all-reduce over the action dimensions, so every PE
		// of a completed group holds C(S): poke it into the whole group, with
		// core.Inf mapped to the word infinity. The mark register becomes the
		// #S = f.Level predicate the next first-kind propagation starts from.
		mark := bitvec.New(m.N())
		for pe := 0; pe < m.N(); pe++ {
			s := pe >> uint(logN)
			pc := bits.OnesCount(uint(s))
			mark.Set(pe, pc == f.Level)
			if pc > f.Level {
				continue
			}
			w := f.C[s]
			if w == core.Inf {
				w = inf
			} else if w >= inf {
				return nil, fmt.Errorf("bvmtt: checkpointed cost %d saturates %d-bit words", w, width)
			}
			m.SetUint(lay.m.Base, width, pe, w)
		}
		m.Poke(bvm.R(lay.mark), mark)
		startRound = f.Level + 1
	}

	var ab *abft
	if opt.Verify {
		ab = newABFT(p, actions, logN, width, inf)
		if f != nil {
			ab.seed(f)
		}
	}

	// runRound executes one complete round j (steps 1–5). It is re-runnable:
	// everything it reads — the frozen M plane, the mark register, PS, TP and
	// the streamed problem planes — is exactly what the ABFT repair rebuilds.
	runRound := func(j int) {
		// (1) Propagate the group mark one level up (first-kind propagation).
		m.SetConst(bvm.R(lay.rcv), false)
		for e := 0; e < k; e++ {
			bvmalg.FetchPartner(m, logN+e, markPair, lay.scratch)
			m.And(bvm.R(lay.cond), bvm.R(lay.cond2), bvm.Loc(bvm.R(lay.addr+logN+e)))
			m.Or(bvm.R(lay.rcv), bvm.R(lay.rcv), bvm.Loc(bvm.R(lay.cond)))
		}
		m.Mov(bvm.R(lay.mark), bvm.Loc(bvm.R(lay.rcv)))

		// (2) R = Q = M.
		bvmalg.CopyWord(m, lay.r, lay.m)
		bvmalg.CopyWord(m, lay.q, lay.m)

		// (3) The e-loop: R[S,i] = R[S−{e},i] where e ∈ S∩T_i and
		// Q[S,i] = Q[S−{e},i] where e ∈ S−T_i.
		for e := 0; e < k; e++ {
			bvmalg.FetchPartner(m, logN+e, rqPairs, lay.scratch)
			m.And(bvm.R(lay.cond), bvm.R(lay.addr+logN+e), bvm.Loc(bvm.R(lay.tmem+e)))
			bvmalg.CondCopyWord(m, lay.r, lay.sh1, bvm.R(lay.cond))
			m.AndNot(bvm.R(lay.cond), bvm.R(lay.addr+logN+e), bvm.Loc(bvm.R(lay.tmem+e)))
			bvmalg.CondCopyWord(m, lay.q, lay.sh2, bvm.R(lay.cond))
		}

		// (4) Combine on the active group: tests add R and Q, treatments
		// only R; dummy padded actions are forced to infinity.
		bvmalg.AddSatWord(m, lay.tmp1, lay.tp, lay.r)
		bvmalg.AddSatWord(m, lay.tmp2, lay.tmp1, lay.q)
		m.MovB(bvm.Loc(bvm.R(lay.istreat)))
		for b := 0; b < width; b++ {
			m.MuxB(lay.tmp2.Bit(b), lay.tmp2.Bit(b), bvm.Loc(lay.tmp1.Bit(b)))
		}
		forceInf := bvm.TT(func(f, d, b bool) bool { return f || d })
		m.And(bvm.R(lay.cond), bvm.R(lay.mark), bvm.Loc(bvm.R(lay.padded)))
		for b := 0; b < width; b++ {
			m.Exec(bvm.Instr{Dst: lay.tmp2.Bit(b), FTT: forceInf, GTT: bvm.TTB,
				F: lay.tmp2.Bit(b), D: bvm.Loc(bvm.R(lay.cond))})
		}
		bvmalg.CondCopyWord(m, lay.m, lay.tmp2, bvm.R(lay.mark))

		// (5) Minimization over the action-index dimensions.
		bvmalg.MinReduce(m, lay.m, 0, logN, lay.sh1, lay.scratch)
		if abftCorruptHook != nil {
			abftCorruptHook(j, m)
		}
	}

	var repairs int
	for j := startRound; j <= k; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ab != nil {
			ab.advance(j)
		}
		runRound(j)
		if ab != nil {
			// The M plane is checksummed here; the lint pass in bvmcheck
			// warns if instructions ever slide between this mark and the
			// barrier mark below (a write would stale the checksum).
			m.MarkRecording(bvm.MarkABFTChecksum, wordRegs(lay.m)...)
			if rep := ab.verify(m, lay, j); !rep.OK() {
				ab.repair(m, lay, q, j)
				runRound(j)
				m.MarkRecording(bvm.MarkABFTChecksum, wordRegs(lay.m)...)
				if rep = ab.verify(m, lay, j); !rep.OK() {
					return nil, &certify.LevelError{Engine: "bvm", Level: j, Report: rep}
				}
				repairs++
			}
			m.MarkRecording(bvm.MarkABFTBarrier, wordRegs(lay.m)...)
		}
		if ck != nil && j < k {
			sol := &core.Solution{C: readCostPlane(m, lay, width, k, logN, inf)}
			if err := ck.CheckpointLevel(j, sol); err != nil {
				return nil, fmt.Errorf("bvmtt: checkpoint at level %d: %w", j, err)
			}
		}
	}

	endPhase("rounds")

	res := &Result{
		Phases:           phases,
		Program:          stopRecording(m, record),
		Instructions:     m.InstrCount,
		LoadInstructions: load,
		PEs:              top.N,
		Width:            width,
		LogN:             logN,
		MachineR:         top.R,
		C:                readCostPlane(m, lay, width, k, logN, inf),
		Repairs:          repairs,
	}
	res.Cost = res.C[len(res.C)-1]
	return res, nil
}

// readCostPlane reads C(S) for every subset off the machine's M plane (PE
// (S, 0) representative), mapping the word infinity back to core.Inf.
func readCostPlane(m *bvm.Machine, lay layout, width, k, logN int, inf uint64) []uint64 {
	c := make([]uint64, 1<<uint(k))
	for s := range c {
		v := m.Uint(lay.m.Base, width, s<<uint(logN))
		if v == inf {
			v = core.Inf
		}
		c[s] = v
	}
	return c
}

// stopRecording ends capture when it was started, else returns nil.
func stopRecording(m *bvm.Machine, record bool) *bvm.Program {
	if !record {
		return nil
	}
	return m.StopRecording()
}

// streamPlane loads a register plane whose bit at PE (S, i) depends only on
// the action index i, through the input chain (n instructions).
func streamPlane(m *bvm.Machine, dst bvm.RegRef, bit func(i int) uint64, logN int) {
	pattern := bitvec.New(m.N())
	iMask := 1<<uint(logN) - 1
	for pe := 0; pe < m.N(); pe++ {
		pattern.Set(pe, bit(pe&iMask) == 1)
	}
	m.LoadViaInput(dst, pattern)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
