package bitvec

import "fmt"

// Word-range variants of the BVM-cycle kernels, the substrate of the striped
// executor (internal/bvm + internal/stripe): each method applies its
// full-vector counterpart to the destination words [lo, hi) only, reading
// sources wherever the kernel's structure requires (always outside any other
// shard's destination range). Splitting a vector's words into disjoint
// [lo, hi) spans and running one span per worker is therefore race-free and
// bit-identical to the full-vector call, for any partition.
//
// All range variants preserve the tail invariant: the span containing the
// final word re-masks it.

// WordCount returns the number of 64-bit words backing the vector — the unit
// the range kernels shard over.
func (v *Vector) WordCount() int { return len(v.words) }

func (v *Vector) checkRange(lo, hi int) {
	if lo < 0 || hi < lo || hi > len(v.words) {
		panic(fmt.Sprintf("bitvec: word range [%d,%d) outside [0,%d)", lo, hi, len(v.words)))
	}
}

// maskTailRange re-establishes the tail invariant when the span includes the
// final word.
func (v *Vector) maskTailRange(hi int) {
	if hi == len(v.words) {
		v.maskTail()
	}
}

// Apply3Range is Apply3 restricted to words [lo, hi) of v.
func (v *Vector) Apply3Range(tt uint8, a, b, c *Vector, lo, hi int) {
	v.sameLen(a)
	v.sameLen(b)
	v.sameLen(c)
	v.checkRange(lo, hi)
	vw, aw, bw, cw := v.words[lo:hi], a.words[lo:hi], b.words[lo:hi], c.words[lo:hi]
	switch tt {
	case 0x00: // constant 0
		for i := range vw {
			vw[i] = 0
		}
	case 0xFF: // constant 1
		for i := range vw {
			vw[i] = ^uint64(0)
		}
	case 0xF0: // F
		copy(vw, aw)
	case 0xCC: // D
		copy(vw, bw)
	case 0xAA: // B
		copy(vw, cw)
	case 0x0F: // ~F
		for i := range vw {
			vw[i] = ^aw[i]
		}
	case 0x33: // ~D
		for i := range vw {
			vw[i] = ^bw[i]
		}
	case 0xC0: // F & D
		for i := range vw {
			vw[i] = aw[i] & bw[i]
		}
	case 0xFC: // F | D
		for i := range vw {
			vw[i] = aw[i] | bw[i]
		}
	case 0x3C: // F ^ D
		for i := range vw {
			vw[i] = aw[i] ^ bw[i]
		}
	case 0x30: // F & ~D
		for i := range vw {
			vw[i] = aw[i] &^ bw[i]
		}
	case 0xD8: // B ? D : F
		for i := range vw {
			sel := cw[i]
			vw[i] = bw[i]&sel | aw[i]&^sel
		}
	case 0x96: // F ^ D ^ B
		for i := range vw {
			vw[i] = aw[i] ^ bw[i] ^ cw[i]
		}
	case 0xE8: // majority(F, D, B)
		for i := range vw {
			x, y := aw[i], bw[i]
			vw[i] = x&y | cw[i]&(x|y)
		}
	default:
		var e [8]uint64
		for m := 0; m < 8; m++ {
			if tt>>uint(m)&1 == 1 {
				e[m] = ^uint64(0)
			}
		}
		for i := range vw {
			x, y, z := aw[i], bw[i], cw[i]
			u0 := e[0]&^z | e[1]&z
			u1 := e[2]&^z | e[3]&z
			u2 := e[4]&^z | e[5]&z
			u3 := e[6]&^z | e[7]&z
			t0 := u0&^y | u1&y
			t1 := u2&^y | u3&y
			vw[i] = t0&^x | t1&x
		}
	}
	v.maskTailRange(hi)
}

// MaskedCopyRange is MaskedCopy restricted to words [lo, hi) of v.
func (v *Vector) MaskedCopyRange(mask, src *Vector, lo, hi int) {
	v.sameLen(mask)
	v.sameLen(src)
	v.checkRange(lo, hi)
	vw, mw, sw := v.words[lo:hi], mask.words[lo:hi], src.words[lo:hi]
	for i := range vw {
		m := mw[i]
		vw[i] = vw[i]&^m | sw[i]&m
	}
}

// CopyFromRange is CopyFrom restricted to words [lo, hi) of v.
func (v *Vector) CopyFromRange(src *Vector, lo, hi int) {
	v.sameLen(src)
	v.checkRange(lo, hi)
	copy(v.words[lo:hi], src.words[lo:hi])
}

// AndRange is And restricted to words [lo, hi) of v.
func (v *Vector) AndRange(a, b *Vector, lo, hi int) {
	v.sameLen(a)
	v.sameLen(b)
	v.checkRange(lo, hi)
	vw, aw, bw := v.words[lo:hi], a.words[lo:hi], b.words[lo:hi]
	for i := range vw {
		vw[i] = aw[i] & bw[i]
	}
}

// RotateWithinBlocksRange is RotateWithinBlocks restricted to words [lo, hi)
// of v. Blocks never straddle words (block divides 64), so the span reads
// only its own source words; v may alias src.
func (v *Vector) RotateWithinBlocksRange(src *Vector, block, shift, lo, hi int) {
	v.rotateWithinBlocksRange(src, block, shift, ^uint64(0), lo, hi)
}

// RotateWithinBlocksMaskedRange is RotateWithinBlocksMasked restricted to
// words [lo, hi) of v. v must not alias src.
func (v *Vector) RotateWithinBlocksMaskedRange(src *Vector, block, shift int, sel uint64, lo, hi int) {
	if v == src {
		panic("bitvec: RotateWithinBlocksMaskedRange dst aliases src")
	}
	v.rotateWithinBlocksRange(src, block, shift, sel, lo, hi)
}

func (v *Vector) rotateWithinBlocksRange(src *Vector, block, shift int, sel uint64, lo, hi int) {
	v.sameLen(src)
	checkBlock(block)
	if v.n%block != 0 {
		panic(fmt.Sprintf("bitvec: length %d not a multiple of block %d", v.n, block))
	}
	v.checkRange(lo, hi)
	vw, sw := v.words[lo:hi], src.words[lo:hi]
	s := ((shift % block) + block) % block
	if s == 0 {
		for i, w := range sw {
			vw[i] = vw[i]&^sel | w&sel
		}
		return
	}
	loMask := repeatPattern(block, 1<<uint(block-s)-1)
	hiMask := ^loMask
	up := uint(s)
	down := uint(block - s)
	for i, w := range sw {
		rot := w>>up&loMask | w<<down&hiMask
		vw[i] = vw[i]&^sel | rot&sel
	}
	v.maskTailRange(hi)
}

// StrideSwapRange is StrideSwap restricted to words [lo, hi) of v.
func (v *Vector) StrideSwapRange(src *Vector, stride, lo, hi int) {
	v.StrideSwapMaskedRange(src, stride, ^uint64(0), lo, hi)
}

// StrideSwapMaskedRange is StrideSwapMasked restricted to words [lo, hi) of
// v. For strides of a word or more the span reads the partner words of src,
// which may lie outside [lo, hi) — source reads are safe under any disjoint
// destination partition because src must not alias v.
func (v *Vector) StrideSwapMaskedRange(src *Vector, stride int, sel uint64, lo, hi int) {
	v.sameLen(src)
	if stride <= 0 || stride&(stride-1) != 0 {
		panic(fmt.Sprintf("bitvec: stride %d is not a positive power of two", stride))
	}
	if v == src {
		panic("bitvec: StrideSwap dst aliases src")
	}
	if v.n%(2*stride) != 0 {
		panic(fmt.Sprintf("bitvec: length %d not a multiple of 2*stride %d", v.n, 2*stride))
	}
	v.checkRange(lo, hi)
	if stride < wordBits {
		loSel := repeatPattern(2*stride, 1<<uint(stride)-1)
		hiSel := loSel << uint(stride)
		vw, sw := v.words[lo:hi], src.words[lo:hi]
		for i, w := range sw {
			swp := w>>uint(stride)&loSel | w<<uint(stride)&hiSel
			vw[i] = vw[i]&^sel | swp&sel
		}
		v.maskTailRange(hi)
		return
	}
	wstride := stride / wordBits
	for wi := lo; wi < hi; wi++ {
		v.words[wi] = v.words[wi]&^sel | src.words[wi^wstride]&sel
	}
	v.maskTailRange(hi)
}

// ShiftUp1Range is ShiftUp1 restricted to words [lo, hi) of v: word i reads
// source words i and i-1, with the external bit entering at word 0. Unlike
// ShiftUp1 it neither returns the shifted-out bit (read src's top bit before
// sharding) nor tolerates aliasing — v must not alias src, because the word
// below a span boundary belongs to another shard.
func (v *Vector) ShiftUp1Range(src *Vector, in bool, lo, hi int) {
	v.sameLen(src)
	if v == src {
		panic("bitvec: ShiftUp1Range dst aliases src")
	}
	v.checkRange(lo, hi)
	if v.n == 0 || lo == hi {
		return
	}
	start := lo
	if lo == 0 {
		w0 := src.words[0] << 1
		if in {
			w0 |= 1
		}
		v.words[0] = w0
		start = 1
	}
	for i := start; i < hi; i++ {
		v.words[i] = src.words[i]<<1 | src.words[i-1]>>(wordBits-1)
	}
	v.maskTailRange(hi)
}
