package bvm

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// This file provides machine-state capture: full snapshots (save/restore,
// used by tests and by search over program variants) and windowed dumps of
// selected registers (the style of the paper's Figure 5 traces). A Tracer
// hook receives every executed instruction, letting tools print evolving
// state without touching the execution core.

// Snapshot is a complete copy of the machine's architectural state (all
// registers; not the instruction counters or pending input).
type Snapshot struct {
	a, b, e *bitvec.Vector
	regs    []*bitvec.Vector
}

// Snapshot captures the current architectural state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		a:    m.a.Clone(),
		b:    m.b.Clone(),
		e:    m.e.Clone(),
		regs: make([]*bitvec.Vector, m.L),
	}
	for j, r := range m.regs {
		s.regs[j] = r.Clone()
	}
	return s
}

// Restore loads a snapshot taken from a machine of identical geometry.
func (m *Machine) Restore(s *Snapshot) {
	if len(s.regs) != m.L || s.a.Len() != m.Top.N {
		panic(fmt.Sprintf("bvm: snapshot shape (%d regs × %d PEs) does not fit machine (%d × %d)",
			len(s.regs), s.a.Len(), m.L, m.Top.N))
	}
	m.a.CopyFrom(s.a)
	m.b.CopyFrom(s.b)
	m.e.CopyFrom(s.e)
	m.noteEWrite()
	for j, r := range s.regs {
		m.regs[j].CopyFrom(r)
	}
}

// Equal reports whether two snapshots hold identical state.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.regs) != len(o.regs) {
		return false
	}
	if !s.a.Equal(o.a) || !s.b.Equal(o.b) || !s.e.Equal(o.e) {
		return false
	}
	for j := range s.regs {
		if !s.regs[j].Equal(o.regs[j]) {
			return false
		}
	}
	return true
}

// Tracer, when set, is invoked after every executed instruction with the
// instruction and its ordinal. It must not mutate the machine.
type Tracer func(step int64, in Instr, m *Machine)

// SetTracer installs (or, with nil, removes) the trace hook.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// DumpRegisters renders the given registers over PEs [0, width) as rows of
// bits — the presentation of the paper's Figures 2-5.
func (m *Machine) DumpRegisters(width int, regs ...RegRef) string {
	if width <= 0 || width > m.Top.N {
		width = m.Top.N
	}
	var sb strings.Builder
	sb.WriteString("PE        ")
	for pe := 0; pe < width; pe++ {
		fmt.Fprintf(&sb, "%d", pe%10)
	}
	sb.WriteByte('\n')
	for _, r := range regs {
		fmt.Fprintf(&sb, "%-9s ", r.String())
		v := m.reg(r)
		for pe := 0; pe < width; pe++ {
			if v.Get(pe) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
