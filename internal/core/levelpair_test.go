package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestSolveLevelPairMatchesSolve pins the cost-only level-pair sweep
// bit-identical to the classic three-table sweep: full C plane, Cost, Ops,
// every reconstructed Choice entry, and the extracted tree.
func TestSolveLevelPairMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(8) + 2
		p := randomProblem(rng, k, rng.Intn(6)+1)
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveLevelPair(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost {
			t.Fatalf("trial %d: level-pair C(U)=%d, Solve %d", trial, got.Cost, want.Cost)
		}
		if got.Ops != want.Ops {
			t.Fatalf("trial %d: Ops %d != %d", trial, got.Ops, want.Ops)
		}
		for s := range got.C {
			if got.C[s] != want.C[s] {
				t.Fatalf("trial %d: C[%b] level-pair %d, Solve %d", trial, s, got.C[s], want.C[s])
			}
		}
		if got.Choice != nil || got.PSum != nil {
			t.Fatalf("trial %d: cost-only sweep materialized Choice/PSum", trial)
		}
		for s := range want.Choice {
			if rc := ChoiceFor(p, got.C, Set(s)); rc != want.Choice[s] {
				t.Fatalf("trial %d: ChoiceFor(%b)=%d, Solve Choice %d", trial, s, rc, want.Choice[s])
			}
		}
		wantTree, err := want.Tree(p)
		if err != nil {
			t.Fatal(err)
		}
		gotTree, err := TreeFromCosts(p, got.C)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotTree, wantTree) {
			t.Fatalf("trial %d: reconstructed tree differs from Choice-table tree", trial)
		}
		// The reconstructed tree is a valid optimal procedure by the
		// DP-ignorant oracle too.
		if tc, err := TreeCost(p, gotTree); err != nil || tc != got.Cost {
			t.Fatalf("trial %d: TreeCost=%d err=%v, want %d", trial, tc, err, got.Cost)
		}
		got.Release()
		want.Release()
	}
}

// TestSolveLevelPairInadequate: no catch-all treatment, C(U) must be Inf and
// tree extraction must refuse.
func TestSolveLevelPairInadequate(t *testing.T) {
	p := &Problem{
		K:       3,
		Weights: []uint64{1, 1, 1},
		Actions: []Action{{Set: SetOf(0), Cost: 1, Treatment: true}},
	}
	sol, err := SolveLevelPair(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Adequate() {
		t.Fatal("inadequate instance reported adequate")
	}
	if _, err := TreeFromCosts(p, sol.C); err == nil {
		t.Fatal("TreeFromCosts accepted an inadequate instance")
	}
}

// TestSolveLevelPairCancellation: an already-cancelled context stops the
// sweep before any work.
func TestSolveLevelPairCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, 12, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveLevelPairCtx(ctx, p); err == nil {
		t.Fatal("cancelled context did not stop the sweep")
	}
}

// TestPsumOfMatchesTable: on-the-fly p(S) equals the PSum table for every
// subset, including saturating weights.
func TestPsumOfMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		k := rng.Intn(10) + 1
		p := randomProblem(rng, k, 1)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		for s := range sol.PSum {
			if got := psumOf(p.Weights, Set(s)); got != sol.PSum[s] {
				t.Fatalf("trial %d: psumOf(%b)=%d, PSum table %d", trial, s, got, sol.PSum[s])
			}
		}
	}
	// Saturating regime (weights beyond what Validate admits, exercising
	// satAdd's order independence directly): high-to-low recomputation must
	// equal the table's low-bit-recursive association order.
	weights := []uint64{Inf - 1, 3, Inf / 2, 7, Inf - 2, 1}
	for s := 0; s < 1<<6; s++ {
		// Reference: fold low-to-high like the table construction.
		var fold func(v int) uint64
		fold = func(v int) uint64 {
			if v == 0 {
				return 0
			}
			low := v & -v
			return satAdd(fold(v&(v-1)), weights[trailing(low)])
		}
		if got, want := psumOf(weights, Set(s)), fold(s); got != want {
			t.Fatalf("saturating psumOf(%b)=%d, table order %d", s, got, want)
		}
	}
}

func trailing(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TestSolutionReleaseReuse: released tables are recycled and the solvers
// produce identical answers on dirty pooled memory.
func TestSolutionReleaseReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := 8
	p1 := randomProblem(rng, k, 5)
	p2 := randomProblem(rng, k, 5)
	first, err := Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Poison then release: the next same-size solve must not be affected by
	// leftover contents.
	for i := range first.C {
		first.C[i] = Inf - 1
	}
	for i := range first.PSum {
		first.PSum[i] = Inf - 1
	}
	for i := range first.Choice {
		first.Choice[i] = 77
	}
	first.Release()
	if first.C != nil || first.Choice != nil || first.PSum != nil {
		t.Fatal("Release did not clear table fields")
	}

	fresh, err := Solve(p2.Clone())
	if err != nil {
		t.Fatal(err)
	}
	reused, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Cost != fresh.Cost {
		t.Fatalf("pooled-solve cost %d != fresh %d", reused.Cost, fresh.Cost)
	}
	for s := range fresh.C {
		if reused.C[s] != fresh.C[s] || reused.Choice[s] != fresh.Choice[s] || reused.PSum[s] != fresh.PSum[s] {
			t.Fatalf("pooled solve differs from fresh at set %b", s)
		}
	}

	// Same discipline for the parallel and level-pair sweeps.
	reused.Release()
	par, err := SolveParallel(p2.Clone(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost != fresh.Cost {
		t.Fatalf("parallel pooled-solve cost %d != fresh %d", par.Cost, fresh.Cost)
	}
	par.Release()
	lp, err := SolveLevelPair(p2.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if lp.Cost != fresh.Cost {
		t.Fatalf("level-pair pooled-solve cost %d != fresh %d", lp.Cost, fresh.Cost)
	}
	lp.Release()
}

// FuzzSolveLevelPair cross-checks the level-pair sweep against Solve on
// arbitrary instances.
func FuzzSolveLevelPair(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(42), uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, kb, nb uint8) {
		k := int(kb)%10 + 1
		n := int(nb)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, k, n)
		if seed%3 == 0 {
			// Sometimes drop the catch-all so inadequate instances fuzz too.
			p.Actions = p.Actions[:len(p.Actions)-1]
		}
		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		got, err := SolveLevelPair(p)
		if err != nil {
			t.Fatal(err)
		}
		for s := range got.C {
			if got.C[s] != want.C[s] {
				t.Fatalf("C[%b]: level-pair %d, Solve %d", s, got.C[s], want.C[s])
			}
		}
		for s := range want.Choice {
			if rc := ChoiceFor(p, got.C, Set(s)); rc != want.Choice[s] {
				t.Fatalf("ChoiceFor(%b)=%d, Solve Choice %d", s, rc, want.Choice[s])
			}
		}
	})
}
