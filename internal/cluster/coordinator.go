package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/bits"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/instio"
)

// maxViolations caps the node-attributed evidence a solve accumulates, like
// a certify report: enough to diagnose, bounded under a hostile worker.
const maxViolations = 8

// remoteWorker is the coordinator's view of one worker session.
type remoteWorker struct {
	name     string // self-declared ID from HelloOK, or a positional default
	conn     net.Conn
	alive    bool
	ok       bool // completed the handshake
	busy     bool // has an outstanding assignment
	strikes  int
	lastSeen time.Time
}

// event is one item from a worker's read loop: a message or a terminal read
// error.
type event struct {
	w    *remoteWorker
	typ  byte
	body []byte
	err  error
}

// levelSlice is one Gosper rank range of the current level, with its retry
// state.
type levelSlice struct {
	lo, hi  uint64
	tries   int       // penalized attempts (verify failures, straggles)
	readyAt time.Time // earliest redispatch after a penalized requeue
}

// assignment is one outstanding slice on one worker.
type assignment struct {
	s        *levelSlice
	w        *remoteWorker
	deadline time.Time
}

// coord is the single-threaded coordinator: per-worker read loops feed one
// event channel, and all state — worker health, inflight assignments, the
// merged tables — is touched only by the Solve goroutine, so the event loop
// needs no locks.
type coord struct {
	ctx  context.Context
	p    *core.Problem
	opts Options
	hash string
	sol  *core.Solution

	frozen  uint64 // FNV-1a over C of every merged level, the plane acceptance checksum
	workers []*remoteWorker
	events  chan event
	done    chan struct{}
	wg      sync.WaitGroup

	nextAssign uint64
	stats      Stats
}

// Solve runs the distributed DP over the given worker connections and
// returns a solution bit-identical to the sequential reference, or fails
// closed. Solve takes ownership of the conns and closes them on return.
func Solve(ctx context.Context, p *core.Problem, conns []net.Conn, opts Options) (*core.Solution, Stats, error) {
	var zero Stats
	closeAll := func() {
		for _, cn := range conns {
			_ = cn.Close()
		}
	}
	if len(conns) == 0 {
		return nil, zero, ErrNoWorkers
	}
	if err := p.Validate(); err != nil {
		closeAll()
		return nil, zero, err
	}
	if err := ctx.Err(); err != nil {
		closeAll()
		return nil, zero, err
	}
	opts = opts.withDefaults(len(conns))
	hash := opts.Hash
	if hash == "" {
		var err error
		if hash, err = checkpoint.ProblemHash(p); err != nil {
			closeAll()
			return nil, zero, err
		}
	}

	size := 1 << uint(p.K)
	sol := &core.Solution{
		C:      make([]uint64, size),
		Choice: make([]int32, size),
		PSum:   make([]uint64, size),
	}
	sol.Choice[0] = -1
	for s := 1; s < size; s++ {
		sol.C[s], sol.Choice[s] = core.Inf, -1
		low := s & -s
		sol.PSum[s] = core.SatAdd(sol.PSum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	start := 1
	if f := opts.Frontier; f.HasChoice() {
		if err := f.Validate(p.K); err != nil {
			closeAll()
			return nil, zero, err
		}
		for s := range f.C {
			if bits.OnesCount32(uint32(s)) <= f.Level {
				sol.C[s], sol.Choice[s] = f.C[s], f.Choice[s]
			}
		}
		start = f.Level + 1
	}

	c := &coord{
		ctx:    ctx,
		p:      p,
		opts:   opts,
		hash:   hash,
		sol:    sol,
		frozen: frozenOver(sol.C, p.K, start-1),
		done:   make(chan struct{}),
	}
	defer c.shutdown()
	if err := c.handshake(conns, start); err != nil {
		return nil, c.stats, err
	}

	for level := start; level <= p.K; level++ {
		if err := c.runLevel(level); err != nil {
			return nil, c.stats, err
		}
		if level < p.K {
			// Workers only need frontiers they will compute from; the final
			// level is followed by Done instead.
			c.broadcastMerged(level)
		}
		forEachLevelSubset(p.K, level, func(s uint32) {
			c.frozen = checkpoint.FNVAdd(c.frozen, sol.C[s])
		})
		if ck := c.opts.Checkpointer; ck != nil && level < p.K {
			if err := ck.CheckpointLevel(level, sol); err != nil {
				return nil, c.stats, err
			}
		}
	}
	c.sendDone()
	sol.Cost = sol.C[size-1]
	// Match the sequential solver's operation accounting: one op per
	// (subset, action) evaluation plus one per subset for the minimum.
	sol.Ops = int64(size-1) * int64(len(p.Actions)+1)
	return sol, c.stats, nil
}

// handshake sends Hello to every connection and waits for the HelloOKs.
// Workers that fail to answer in time — or answer for the wrong instance —
// are dead before the first assignment.
func (c *coord) handshake(conns []net.Conn, start int) error {
	var pbuf bytes.Buffer
	if err := instio.Write(&pbuf, c.p, ""); err != nil {
		return err
	}
	hb := helloBody{Hash: c.hash, Problem: pbuf.Bytes()}
	if start > 1 {
		img, err := checkpoint.Encode(c.p, c.hash, "cluster", 0, start-1, c.sol)
		if err != nil {
			return err
		}
		hb.Frontier = img
	}
	now := time.Now()
	for i, conn := range conns {
		c.workers = append(c.workers, &remoteWorker{
			name: fmt.Sprintf("worker-%d", i), conn: conn, alive: true, lastSeen: now,
		})
	}
	c.events = make(chan event, 4*len(c.workers)+4)
	for _, w := range c.workers {
		if err := writeJSON(w.conn, msgHello, &hb); err != nil {
			c.markDead(w, "hello write", err)
			continue
		}
		c.wg.Add(1)
		go c.readLoop(w)
	}
	deadline := time.Now().Add(c.opts.HandshakeTimeout)
	for c.pendingOK() > 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		timer := time.NewTimer(remaining)
		select {
		case <-c.ctx.Done():
			timer.Stop()
			return c.ctx.Err()
		case ev := <-c.events:
			timer.Stop()
			c.handshakeEvent(ev)
		case <-timer.C:
		}
	}
	for _, w := range c.workers {
		if w.alive && !w.ok {
			c.markDead(w, "handshake timeout", nil)
		}
	}
	c.stats.Workers = c.live()
	if n := c.live(); n < c.opts.Quorum {
		return &QuorumError{Level: start, Live: n, Quorum: c.opts.Quorum}
	}
	return nil
}

func (c *coord) pendingOK() int {
	n := 0
	for _, w := range c.workers {
		if w.alive && !w.ok {
			n++
		}
	}
	return n
}

func (c *coord) handshakeEvent(ev event) {
	w := ev.w
	if ev.err != nil {
		c.markDead(w, "read", ev.err)
		return
	}
	if !w.alive {
		return
	}
	w.lastSeen = time.Now()
	switch ev.typ {
	case msgHelloOK:
		var ok helloOKBody
		if err := json.Unmarshal(ev.body, &ok); err != nil {
			c.markDead(w, "hello-ok decode", err)
			return
		}
		if ok.Hash != c.hash {
			c.markDead(w, fmt.Sprintf("hello-ok for instance %.12s, want %.12s", ok.Hash, c.hash), nil)
			return
		}
		if ok.ID != "" {
			w.name = ok.ID
		}
		w.ok = true
	case msgPong:
	default:
		c.markDead(w, fmt.Sprintf("unexpected message type %d during handshake", ev.typ), nil)
	}
}

// readLoop feeds one worker's messages into the shared event channel until
// the conn errors or the coordinator shuts down.
func (c *coord) readLoop(w *remoteWorker) {
	defer c.wg.Done()
	defer func() {
		// A reader panic must surface as a worker failure, not kill the
		// process or wedge shutdown's wg.Wait.
		if r := recover(); r != nil {
			select {
			case c.events <- event{w: w, err: fmt.Errorf("reader panic: %v", r)}:
			case <-c.done:
			}
		}
	}()
	for {
		typ, body, err := readMsg(w.conn, 0)
		select {
		case c.events <- event{w: w, typ: typ, body: body, err: err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// runLevel drives one level to completion: dispatch slices, collect and
// verify planes, reassign on failure, and keep the fleet honest with
// deadlines and heartbeats.
func (c *coord) runLevel(level int) error {
	total := core.Binomial(c.p.K, level)
	nSlices := uint64(c.opts.Slices)
	if nSlices > total {
		nSlices = total
	}
	if nSlices < 1 {
		nSlices = 1
	}
	chunk := (total + nSlices - 1) / nSlices
	var queue []*levelSlice
	for lo := uint64(0); lo < total; lo += chunk {
		queue = append(queue, &levelSlice{lo: lo, hi: min(lo+chunk, total)})
	}
	remaining := len(queue)
	inflight := make(map[uint64]*assignment)
	hbAt := time.Now().Add(c.opts.HeartbeatEvery)

	for remaining > 0 {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		// Reclaim slices stranded on workers that died since the last pass —
		// no penalty: the slice was not at fault.
		for id, a := range inflight {
			if !a.w.alive {
				delete(inflight, id)
				if err := c.requeueSlice(a.s, &queue, false); err != nil {
					return err
				}
			}
		}
		if n := c.live(); n < c.opts.Quorum {
			return &QuorumError{Level: level, Live: n, Quorum: c.opts.Quorum}
		}
		now := time.Now()
		// Dispatch every ready slice to the healthiest idle workers.
		for i := 0; i < len(queue); {
			s := queue[i]
			if s.readyAt.After(now) {
				i++
				continue
			}
			w := c.pickWorker()
			if w == nil {
				break
			}
			queue = append(queue[:i], queue[i+1:]...)
			id := c.nextAssign
			c.nextAssign++
			if err := writeJSON(w.conn, msgAssign, &assignBody{ID: id, Level: level, Lo: s.lo, Hi: s.hi}); err != nil {
				c.markDead(w, "assign write", err)
				queue = append(queue, s)
				continue
			}
			w.busy = true
			inflight[id] = &assignment{s: s, w: w, deadline: now.Add(c.opts.PlaneDeadline)}
		}
		// Sleep until the next deadline: a straggler, a backed-off slice, or
		// the heartbeat tick.
		wake := hbAt
		for _, a := range inflight {
			if a.deadline.Before(wake) {
				wake = a.deadline
			}
		}
		for _, s := range queue {
			if s.readyAt.After(now) && s.readyAt.Before(wake) {
				wake = s.readyAt
			}
		}
		timer := time.NewTimer(time.Until(wake))
		select {
		case <-c.ctx.Done():
			timer.Stop()
			return c.ctx.Err()
		case ev := <-c.events:
			timer.Stop()
			if err := c.levelEvent(ev, level, inflight, &queue, &remaining); err != nil {
				return err
			}
		case <-timer.C:
			now = time.Now()
			for id, a := range inflight {
				if now.After(a.deadline) {
					delete(inflight, id)
					a.w.busy = false
					c.stats.Stragglers++
					c.strike(a.w, "plane deadline exceeded")
					if err := c.requeueSlice(a.s, &queue, true); err != nil {
						return err
					}
				}
			}
			if !now.Before(hbAt) {
				c.heartbeat(now)
				hbAt = now.Add(c.opts.HeartbeatEvery)
			}
		}
	}
	return nil
}

// levelEvent handles one worker message during a level: pongs refresh
// liveness, planes are verified and merged or refused and reassigned, and
// anything else is a protocol violation.
func (c *coord) levelEvent(ev event, level int, inflight map[uint64]*assignment, queue *[]*levelSlice, remaining *int) error {
	w := ev.w
	if ev.err != nil {
		c.markDead(w, "read", ev.err)
		return nil
	}
	if !w.alive {
		return nil
	}
	w.lastSeen = time.Now()
	switch ev.typ {
	case msgPong, msgHelloOK:
		return nil
	case msgPlane:
		if len(ev.body) < 8 {
			c.markDead(w, "plane message too short", nil)
			return nil
		}
		id := binary.LittleEndian.Uint64(ev.body)
		a, known := inflight[id]
		if !known || a.w != w {
			// A late plane for a reassigned slice, a duplicated frame, or an
			// unsolicited plane: the merged tables already moved on.
			c.stats.StalePlanes++
			return nil
		}
		delete(inflight, id)
		w.busy = false
		rep := &certify.Report{}
		plane, err := checkpoint.DecodePlane(ev.body[8:])
		if err != nil {
			rep.Violations = append(rep.Violations, certify.Violation{
				Kind: certify.BadStructure, Action: -1, Node: w.name,
				Detail: fmt.Sprintf("plane image rejected: %v", err),
			})
		} else {
			rep = c.verifyPlane(w, level, a.s.lo, a.s.hi, plane)
		}
		if !rep.OK() {
			c.stats.PlanesRejected++
			c.recordViolations(rep)
			c.strike(w, "plane rejected")
			return c.requeueSlice(a.s, queue, true)
		}
		v := uint32(core.NthSubset(a.s.lo, level))
		for i := range plane.C {
			c.sol.C[v], c.sol.Choice[v] = plane.C[i], plane.Choice[i]
			lsb := v & -v
			r := v + lsb
			v = (r^v)>>2/lsb | r
		}
		c.stats.Planes++
		*remaining--
		return nil
	default:
		c.markDead(w, fmt.Sprintf("unexpected message type %d", ev.typ), nil)
		return nil
	}
}

// verifyPlane is the admission check a plane must pass before a single cell
// reaches the merged tables: geometry, the frozen-frontier and weight
// checksums, per-cell choice sanity and monotonicity against the already
// final lower levels, and a seeded spot-audit that recomputes sampled cells
// from the recurrence. Every violation is attributed to the sending worker.
func (c *coord) verifyPlane(w *remoteWorker, level int, lo, hi uint64, plane *checkpoint.Plane) *certify.Report {
	rep := &certify.Report{}
	add := func(viol certify.Violation) {
		viol.Node = w.name
		if len(rep.Violations) < maxViolations {
			rep.Violations = append(rep.Violations, viol)
		}
	}
	if plane.Level != level || plane.Lo != lo || plane.Hi != hi || plane.Choice == nil {
		add(certify.Violation{Kind: certify.BadShape, Action: -1,
			Detail: fmt.Sprintf("plane level=%d ranks [%d,%d) choices=%v, want level=%d [%d,%d) with choices",
				plane.Level, plane.Lo, plane.Hi, plane.Choice != nil, level, lo, hi)})
		return rep
	}
	if plane.FrozenSum != c.frozen {
		add(certify.Violation{Kind: certify.BadCell, Action: -1, Got: plane.FrozenSum, Want: c.frozen,
			Detail: "frozen frontier checksum mismatch: plane computed from a diverged frontier"})
	}
	wsum := checkpoint.FNVInit()
	v := uint32(core.NthSubset(lo, level))
	for i := lo; i < hi; i++ {
		wsum = checkpoint.FNVAdd(wsum, c.sol.PSum[v])
		lsb := v & -v
		r := v + lsb
		v = (r^v)>>2/lsb | r
	}
	if wsum != plane.WeightSum {
		add(certify.Violation{Kind: certify.BadConservation, Action: -1, Got: plane.WeightSum, Want: wsum,
			Detail: "weight checksum mismatch: worker disagrees on p(S) over the slice"})
	}
	rng := rand.New(rand.NewSource(c.opts.Seed ^ int64(level)<<32 ^ int64(lo)))
	v = uint32(core.NthSubset(lo, level))
	for i := range plane.C {
		if len(rep.Violations) >= maxViolations {
			break
		}
		rep.Checked++
		cv, ch := plane.C[i], plane.Choice[i]
		if (cv == core.Inf) != (ch < 0) || int(ch) >= len(c.p.Actions) {
			add(certify.Violation{Kind: certify.BadChoice, Set: core.Set(v), Action: int(ch), Got: cv,
				Detail: "choice index out of range or inconsistent with an infinite cost"})
		}
		for x := v; x != 0; x &= x - 1 {
			e := x & -x
			if c.sol.C[v&^e] > cv {
				add(certify.Violation{Kind: certify.BadMonotone, Set: core.Set(v), Action: -1,
					Got: cv, Want: c.sol.C[v&^e],
					Detail: fmt.Sprintf("C(S−{%d}) exceeds claimed C(S)", bits.TrailingZeros32(e))})
				break
			}
		}
		if c.opts.AuditFraction >= 1 || rng.Float64() < c.opts.AuditFraction {
			c.stats.AuditedCells++
			best, bestIdx := cellBest(c.p, c.sol.C, c.sol.PSum[v], v)
			if best != cv || bestIdx != ch {
				add(certify.Violation{Kind: certify.BadCell, Set: core.Set(v), Action: int(ch), Got: cv, Want: best,
					Detail: "audited cell disagrees with direct recomputation from the merged frontier"})
			}
		}
		lsb := v & -v
		r := v + lsb
		v = (r^v)>>2/lsb | r
	}
	return rep
}

// broadcastMerged sends the verified level to every live worker — the single
// source of truth they extend their frontiers from.
func (c *coord) broadcastMerged(level int) {
	total := core.Binomial(c.p.K, level)
	plane := &checkpoint.Plane{
		Level: level, Lo: 0, Hi: total,
		FrozenSum: c.frozen,
		WeightSum: checkpoint.FNVInit(),
		C:         make([]uint64, 0, total),
		Choice:    make([]int32, 0, total),
	}
	forEachLevelSubset(c.p.K, level, func(s uint32) {
		plane.C = append(plane.C, c.sol.C[s])
		plane.Choice = append(plane.Choice, c.sol.Choice[s])
		plane.WeightSum = checkpoint.FNVAdd(plane.WeightSum, c.sol.PSum[s])
	})
	img, err := checkpoint.EncodePlane(plane)
	if err != nil {
		// Geometry is ours and in range; encoding cannot fail.
		panic(err)
	}
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		if err := writeMsg(w.conn, msgMerged, img); err != nil {
			c.markDead(w, "merged write", err)
		}
	}
}

// heartbeat pings every live worker and reaps those silent for more than
// HeartbeatMiss intervals — the only way to catch a partition that drops
// packets without erroring the conn.
func (c *coord) heartbeat(now time.Time) {
	stale := time.Duration(c.opts.HeartbeatMiss+1) * c.opts.HeartbeatEvery
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		if now.Sub(w.lastSeen) > stale {
			c.markDead(w, "heartbeat silence", nil)
			continue
		}
		if err := writeMsg(w.conn, msgPing, nil); err != nil {
			c.markDead(w, "ping write", err)
		}
	}
}

// requeueSlice puts a slice back on the dispatch queue. A penalized requeue
// (verify failure, straggle) counts against the slice's bounded retries and
// backs off with jitter; a blameless one (worker died) redispatches
// immediately.
func (c *coord) requeueSlice(s *levelSlice, queue *[]*levelSlice, penalize bool) error {
	c.stats.Reassigned++
	if penalize {
		s.tries++
		if s.tries > c.opts.SliceRetries {
			return fmt.Errorf("cluster: slice [%d,%d) exhausted %d retries", s.lo, s.hi, c.opts.SliceRetries)
		}
		s.readyAt = time.Now().Add(retryBackoff(s.tries))
	}
	*queue = append(*queue, s)
	return nil
}

// retryBackoff is the bounded jittered backoff for penalized reassignments:
// 5ms·2^min(tries,6) plus up to 100% jitter, capped at 2s.
func retryBackoff(tries int) time.Duration {
	base := 5 * time.Millisecond << uint(min(tries, 6))
	return min(base+time.Duration(rand.Int63n(int64(base))), 2*time.Second)
}

// pickWorker returns the healthiest idle worker: alive, not busy, fewest
// strikes — suspects compute only when no clean worker is free.
func (c *coord) pickWorker() *remoteWorker {
	var best *remoteWorker
	for _, w := range c.workers {
		if !w.alive || w.busy {
			continue
		}
		if best == nil || w.strikes < best.strikes {
			best = w
		}
	}
	return best
}

func (c *coord) live() int {
	n := 0
	for _, w := range c.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// markDead removes a worker: its conn is closed (which ends its read loop)
// and it is never assigned again.
func (c *coord) markDead(w *remoteWorker, reason string, err error) {
	if !w.alive {
		return
	}
	w.alive = false
	_ = w.conn.Close()
	c.stats.WorkersLost++
	c.opts.Logger.Warn("cluster worker lost", "worker", w.name, "reason", reason, "err", err)
}

// strike penalizes a worker for a rejected plane or a missed deadline;
// MaxStrikes removes it.
func (c *coord) strike(w *remoteWorker, reason string) {
	if !w.alive {
		return
	}
	w.strikes++
	c.opts.Logger.Warn("cluster worker suspect", "worker", w.name, "strikes", w.strikes, "reason", reason)
	if w.strikes >= c.opts.MaxStrikes {
		c.markDead(w, "struck out", nil)
	}
}

func (c *coord) recordViolations(rep *certify.Report) {
	for _, v := range rep.Violations {
		if len(c.stats.Violations) >= maxViolations {
			return
		}
		c.stats.Violations = append(c.stats.Violations, v)
	}
}

// sendDone ends every surviving session cleanly, best-effort.
func (c *coord) sendDone() {
	for _, w := range c.workers {
		if w.alive {
			_ = writeMsg(w.conn, msgDone, nil)
		}
	}
}

// shutdown tears the coordinator down without leaks: the done channel
// releases any read loop blocked on the event channel, closing the conns
// releases any blocked on a read, and the wait group confirms both.
func (c *coord) shutdown() {
	close(c.done)
	for _, w := range c.workers {
		_ = w.conn.Close()
	}
	c.wg.Wait()
}

// cellBest recomputes one DP cell from a final strict-subset frontier with
// the exact sequential recurrence — same saturating arithmetic, same
// lowest-index tie-breaking. Shared by the honest worker (computing planes)
// and the coordinator (auditing them).
func cellBest(p *core.Problem, c []uint64, psum uint64, s uint32) (uint64, int32) {
	best, bestIdx := core.Inf, int32(-1)
	for i, a := range p.Actions {
		inter := core.Set(s) & a.Set
		diff := core.Set(s) &^ a.Set
		cost := core.SatMul(a.Cost, psum)
		if a.Treatment {
			if inter == 0 {
				cost = core.Inf // treatment treats nothing: S−T_i = S
			} else {
				cost = core.SatAdd(cost, c[diff])
			}
		} else {
			if inter == 0 || diff == 0 {
				cost = core.Inf // test does not split S
			} else {
				cost = core.SatAdd(cost, core.SatAdd(c[inter], c[diff]))
			}
		}
		if cost < best {
			best, bestIdx = cost, int32(i)
		}
	}
	return best, bestIdx
}
