// Transcript: what a deployed procedure actually does. Solves a medical
// instance, then simulates individual patients — walking the optimal tree
// against sampled faults — and prints their step-by-step transcripts, plus a
// Monte-Carlo check that realized costs converge to the DP's expectation.
//
//	go run ./examples/transcript
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/simulate"
	"repro/internal/workload"
)

func main() {
	problem := workload.MedicalDiagnosis(77, 8)
	sol, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := sol.Tree(problem)
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.Stats(problem, tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal procedure: %v\n\n", st)

	smp, err := simulate.NewSampler(problem)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for patient := 1; patient <= 3; patient++ {
		fault := smp.Draw(rng)
		steps, cost, err := simulate.Execute(problem, tree, fault)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("patient %d (disease %d, prior weight %d): total cost %d\n",
			patient, fault, problem.Weights[fault], cost)
		fmt.Print(simulate.TranscriptString(problem, steps))
		fmt.Println()
	}

	est, err := simulate.EstimateCost(problem, tree, 99, 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte-Carlo over %d patients: %.1f ± %.1f (analytic C(U) = %d)\n",
		est.Trials, est.Mean, est.StdErr, sol.Cost)
}
