package core

import (
	"fmt"
	"math/bits"
)

// This file implements a depth-d lookahead policy: the anytime middle ground
// between the one-step greedy and the exponential exact DP. At each realized
// candidate set the policy evaluates every applicable action by expanding
// the recurrence exactly for d levels and pricing the horizon sets with the
// greedy completion cost, then commits to the best action and repeats with a
// fresh horizon. Depth 0 degenerates to pure greedy pricing; depth >= |S|
// expands every branch to empty sets and is exact. This is how one would
// actually deploy the TT machinery when 2^k state space is out of reach.

// lookaheadSolver caches greedy completion costs and bounded-depth values.
type lookaheadSolver struct {
	p      *Problem
	psum   []uint64
	greedy map[Set]uint64
	value  map[lkKey]uint64
}

type lkKey struct {
	s Set
	d int
}

// LookaheadTree builds a valid procedure tree with depth-d lookahead.
func LookaheadTree(p *Problem, depth int) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if depth < 0 {
		return nil, fmt.Errorf("core: negative lookahead depth %d", depth)
	}
	ls := &lookaheadSolver{
		p:      p,
		psum:   make([]uint64, 1<<uint(p.K)),
		greedy: make(map[Set]uint64),
		value:  make(map[lkKey]uint64),
	}
	for s := 1; s < len(ls.psum); s++ {
		low := s & -s
		ls.psum[s] = satAdd(ls.psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	return ls.build(Universe(p.K), depth)
}

// LookaheadCost is LookaheadTree followed by TreeCost.
func LookaheadCost(p *Problem, depth int) (uint64, error) {
	tree, err := LookaheadTree(p, depth)
	if err != nil {
		return 0, err
	}
	return TreeCost(p, tree)
}

func (ls *lookaheadSolver) build(s Set, depth int) (*Node, error) {
	if s == 0 {
		return nil, nil
	}
	bestIdx := -1
	best := Inf
	for i, a := range ls.p.Actions {
		cost, ok := ls.actionValue(s, a, depth)
		if !ok {
			continue
		}
		if cost < best {
			best, bestIdx = cost, i
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: lookahead stuck at set %v (inadequate instance?)", s)
	}
	a := ls.p.Actions[bestIdx]
	n := &Node{Action: bestIdx, Set: s}
	var err error
	if !a.Treatment {
		if n.Pos, err = ls.build(s&a.Set, depth); err != nil {
			return nil, err
		}
	}
	if n.Neg, err = ls.build(s&^a.Set, depth); err != nil {
		return nil, err
	}
	return n, nil
}

// actionValue prices applying action a at set s with depth levels of exact
// expansion below it. ok is false for inapplicable actions.
func (ls *lookaheadSolver) actionValue(s Set, a Action, depth int) (uint64, bool) {
	inter := s & a.Set
	diff := s &^ a.Set
	if inter == 0 || (!a.Treatment && diff == 0) {
		return 0, false
	}
	cost := satMul(a.Cost, ls.psum[s])
	if a.Treatment {
		return satAdd(cost, ls.estimate(diff, depth)), true
	}
	return satAdd(cost, satAdd(ls.estimate(inter, depth), ls.estimate(diff, depth))), true
}

// estimate is V_d(S): exact expansion for d levels, greedy completion at the
// horizon.
func (ls *lookaheadSolver) estimate(s Set, depth int) uint64 {
	if s == 0 {
		return 0
	}
	if depth == 0 {
		return ls.greedyCost(s)
	}
	key := lkKey{s, depth}
	if v, ok := ls.value[key]; ok {
		return v
	}
	best := Inf
	for _, a := range ls.p.Actions {
		if v, ok := ls.actionValue(s, a, depth-1); ok && v < best {
			best = v
		}
	}
	ls.value[key] = best
	return best
}

// greedyCost prices a set with the cost-effectiveness greedy (the same rule
// as GreedyTree), memoized across the whole search.
func (ls *lookaheadSolver) greedyCost(s Set) uint64 {
	if s == 0 {
		return 0
	}
	if v, ok := ls.greedy[s]; ok {
		return v
	}
	bestIdx := -1
	var bestNum, bestDen uint64
	for i, a := range ls.p.Actions {
		inter := s & a.Set
		diff := s &^ a.Set
		if inter == 0 || (!a.Treatment && diff == 0) {
			continue
		}
		num := satMul(a.Cost, ls.psum[s])
		var den uint64
		if a.Treatment {
			den = ls.psum[inter]
		} else {
			den = min(ls.psum[inter], ls.psum[diff])
		}
		if den == 0 {
			continue
		}
		if bestIdx < 0 || satMul(num, bestDen) < satMul(bestNum, den) {
			bestIdx, bestNum, bestDen = i, num, den
		}
	}
	if bestIdx < 0 {
		for i, a := range ls.p.Actions {
			if a.Treatment && s&a.Set != 0 {
				bestIdx = i
				break
			}
		}
	}
	if bestIdx < 0 {
		ls.greedy[s] = Inf
		return Inf
	}
	a := ls.p.Actions[bestIdx]
	v := satMul(a.Cost, ls.psum[s])
	if !a.Treatment {
		v = satAdd(v, ls.greedyCost(s&a.Set))
	}
	v = satAdd(v, ls.greedyCost(s&^a.Set))
	ls.greedy[s] = v
	return v
}
