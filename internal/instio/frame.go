package instio

// The artifact frame is instio's binary envelope for compiled, immutable
// artifacts — today the policy artifacts of internal/policy, built so a
// future mmap loader can use the bytes in place:
//
//	offset  size  field
//	     0     4  magic "TTAF"
//	     4     4  frame format version (little-endian uint32)
//	     8     4  payload kind (registered below)
//	    12     4  CRC-32C of the payload (Castagnoli, the checkpoint polynomial)
//	    16     8  payload length in bytes (little-endian uint64)
//	    24     8  reserved, must be zero
//	    32     …  payload
//
// The header is exactly 32 bytes, so the payload begins 8-byte aligned for
// any aligned mapping of the file, and every fixed-width field inside a
// payload that keeps its own records 8-byte aligned stays aligned in the
// map. ReadFrame verifies magic, version, kind registration, a sane length,
// and the payload checksum before returning a byte of payload — a torn or
// bit-flipped artifact is an error, never a struct.
//
// The CRC gates accidental corruption only; tamper-evidence for artifacts
// whose content must be trusted (compiled policies) is layered above by the
// payload format itself (internal/policy seals its payload with SHA-256).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameKind identifies what a frame's payload encodes.
type FrameKind uint32

const (
	// FramePolicy is a compiled policy artifact (internal/policy).
	FramePolicy FrameKind = 1
)

const (
	frameMagic   = "TTAF"
	frameVersion = 1
	// FrameHeaderLen is the fixed frame header size; payloads start here.
	FrameHeaderLen = 32
	// maxFramePayload bounds a frame's declared payload so a corrupt length
	// field cannot drive an allocation by itself. The largest real artifact
	// (2^MaxK reachable states, fixed-width nodes) is far below this.
	maxFramePayload = 1 << 30
)

var crcCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one artifact frame: the 32-byte header followed by the
// payload.
func WriteFrame(w io.Writer, kind FrameKind, payload []byte) error {
	var hdr [FrameHeaderLen]byte
	copy(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], frameVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(kind))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcCastagnoli))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("instio: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("instio: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads and verifies one artifact frame, returning its kind and
// payload. Any structural defect — bad magic, unknown version, oversized
// length, short payload, checksum mismatch — is an error.
func ReadFrame(r io.Reader) (FrameKind, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("instio: reading frame header: %w", err)
	}
	if string(hdr[0:4]) != frameMagic {
		return 0, nil, fmt.Errorf("instio: bad frame magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != frameVersion {
		return 0, nil, fmt.Errorf("instio: unsupported frame version %d", v)
	}
	kind := FrameKind(binary.LittleEndian.Uint32(hdr[8:12]))
	wantCRC := binary.LittleEndian.Uint32(hdr[12:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("instio: frame payload length %d exceeds cap", n)
	}
	if rsv := binary.LittleEndian.Uint64(hdr[24:32]); rsv != 0 {
		return 0, nil, fmt.Errorf("instio: frame reserved field is %#x, want 0", rsv)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("instio: reading frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcCastagnoli); got != wantCRC {
		return 0, nil, fmt.Errorf("instio: frame payload checksum mismatch (got %#x want %#x)", got, wantCRC)
	}
	return kind, payload, nil
}
