package bvm

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := newMachine(t, 1)
	m.Poke(R(3), bitvec.MustFromString("10110100"))
	m.Poke(A, bitvec.MustFromString("01010101"))
	m.SetConst(E, false)
	snap := m.Snapshot()

	// Mutate everything.
	m.SetConst(E, true)
	m.SetConst(R(3), true)
	m.SetConst(A, false)
	if m.Snapshot().Equal(snap) {
		t.Fatal("mutated state compares equal to snapshot")
	}

	m.Restore(snap)
	if !m.Snapshot().Equal(snap) {
		t.Fatal("restore did not reproduce the snapshot")
	}
	if m.Peek(R(3)).String() != "10110100" {
		t.Fatal("register content lost")
	}
	if m.Peek(E).Any() {
		t.Fatal("enable register not restored")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := newMachine(t, 1)
	snap := m.Snapshot()
	m.SetConst(R(0), true, nil...)
	if snap.regs[0].Any() {
		t.Fatal("snapshot aliases live register")
	}
}

func TestRestoreShapeMismatchPanics(t *testing.T) {
	m1 := newMachine(t, 1)
	m2, err := New(2, DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-geometry restore did not panic")
		}
	}()
	m2.Restore(m1.Snapshot())
}

func TestTracerObservesInstructions(t *testing.T) {
	m := newMachine(t, 1)
	var steps []int64
	var names []string
	m.SetTracer(func(step int64, in Instr, mm *Machine) {
		steps = append(steps, step)
		names = append(names, in.Dst.String())
	})
	m.SetConst(R(0), true)
	m.Mov(R(1), Loc(R(0)))
	m.SetTracer(nil)
	m.Mov(R(2), Loc(R(0)))
	if len(steps) != 2 || steps[0] != 1 || steps[1] != 2 {
		t.Fatalf("tracer steps = %v", steps)
	}
	if names[0] != "R[0]" || names[1] != "R[1]" {
		t.Fatalf("tracer names = %v", names)
	}
}

func TestDumpRegisters(t *testing.T) {
	m := newMachine(t, 1)
	m.Poke(R(0), bitvec.MustFromString("10110100"))
	out := m.DumpRegisters(8, R(0), A)
	if !strings.Contains(out, "R[0]      10110100") {
		t.Errorf("dump missing register row:\n%s", out)
	}
	if !strings.Contains(out, "A         00000000") {
		t.Errorf("dump missing A row:\n%s", out)
	}
	// Width 0 means all PEs.
	if !strings.Contains(m.DumpRegisters(0, R(0)), "10110100") {
		t.Error("full-width dump wrong")
	}
}
