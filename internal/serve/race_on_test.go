//go:build race

package serve

// raceEnabled scales heavyweight load tests down when the race detector
// multiplies their cost; the build tag is the only reliable signal.
const raceEnabled = true
