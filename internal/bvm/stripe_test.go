package bvm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/stripe"
)

// newStripedPair builds a striped machine (minWords=1 so even tiny
// geometries take the pool path) and a scalar twin with identical register
// state, both seeded from rng.
func newStripedPair(t testing.TB, r, regs, workers int, rng *rand.Rand) (striped, scalar *Machine) {
	t.Helper()
	striped, err := New(r, regs)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err = New(r, regs)
	if err != nil {
		t.Fatal(err)
	}
	striped.SetStriped(stripe.New(workers), 1)
	for j := 0; j < regs; j++ {
		v := randVecN(rng, striped.Top.N)
		striped.Poke(R(j), v)
		scalar.Poke(R(j), v)
	}
	return striped, scalar
}

// TestExecStripedDifferential runs identical random instruction streams
// through the striped path and the scalar reference path (SetReferenceExec)
// and demands bit-identical architectural state, for every small geometry and
// a spread of worker counts. This is the pin required by ISSUE 7: striping
// must not be observable in machine state.
func TestExecStripedDifferential(t *testing.T) {
	for r := 1; r <= 3; r++ {
		for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
			const regs = 4
			rng := rand.New(rand.NewSource(int64(9000 + 97*r + workers)))
			striped, ref := newStripedPair(t, r, regs, workers, rng)
			ref.SetReferenceExec(true)
			inputs := make([]bool, 64)
			for i := range inputs {
				inputs[i] = rng.Intn(2) == 1
			}
			striped.PushInput(inputs...)
			ref.PushInput(inputs...)

			for i := 0; i < 200; i++ {
				in := randomInstr(rng, striped.Top.Q, regs)
				striped.Exec(in)
				ref.Exec(in)
				if i%25 == 0 && !striped.Snapshot().Equal(ref.Snapshot()) {
					t.Fatalf("r=%d workers=%d: state diverged at step %d executing %v", r, workers, i, in)
				}
			}
			if !striped.Snapshot().Equal(ref.Snapshot()) {
				t.Fatalf("r=%d workers=%d: final state diverged", r, workers)
			}
			if striped.InstrCount != ref.InstrCount {
				t.Fatalf("r=%d workers=%d: InstrCount %d != %d", r, workers, striped.InstrCount, ref.InstrCount)
			}
			for i := range striped.Output {
				if striped.Output[i] != ref.Output[i] {
					t.Fatalf("r=%d workers=%d: output bit %d differs", r, i, workers)
				}
			}
		}
	}
}

// TestExecStripedBigMachine exercises the geometry striping exists for
// (r=4, 2^20 PEs, 16384 words) above the default minWords threshold,
// against the scalar kernel path (itself pinned to the per-bit reference by
// TestExecDifferentialRandomPrograms).
func TestExecStripedBigMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("r=4 machine in -short mode")
	}
	const regs = 3
	rng := rand.New(rand.NewSource(41))
	striped, scalar := newStripedPair(t, 4, regs, 0, rng)
	striped.SetStriped(stripe.Shared(), 0) // default threshold: 16384 >= 1024
	for i := 0; i < 30; i++ {
		in := randomInstr(rng, striped.Top.Q, regs)
		striped.Exec(in)
		scalar.Exec(in)
	}
	if !striped.Snapshot().Equal(scalar.Snapshot()) {
		t.Fatal("r=4: striped state diverged from scalar")
	}
}

// TestExecStripedBelowThresholdStaysScalar pins the gating: a machine under
// minWords words never dispatches to the pool.
func TestExecStripedBelowThresholdStaysScalar(t *testing.T) {
	m, err := New(3, 2) // 32 words < default 1024
	if err != nil {
		t.Fatal(err)
	}
	m.SetStriped(stripe.Shared(), 0)
	if m.stripeMin != DefaultStripeMinWords {
		t.Fatalf("minWords<=0 selected %d, want DefaultStripeMinWords", m.stripeMin)
	}
	// A poisoned pool would panic if dispatched to with shards>1; instead
	// just verify the word count is under the threshold so Exec's gate holds.
	if m.sD.WordCount() >= m.stripeMin {
		t.Fatalf("r=3 machine has %d words, expected under threshold %d", m.sD.WordCount(), m.stripeMin)
	}
	m.Mov(R(0), Via(R(1), RouteS)) // exercises the scalar branch
}

// TestExecStripedConcurrentMachines is the race-detector stress test from
// ISSUE 7: many machines striping over one shared pool concurrently, each
// compared bit-identical to its own scalar twin, across worker counts
// 1..NumCPU. Run with -race in CI's race job.
func TestExecStripedConcurrentMachines(t *testing.T) {
	for workers := 1; workers <= runtime.NumCPU(); workers++ {
		pool := stripe.New(workers)
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errs <- fmt.Errorf("goroutine %d panicked: %v", g, r)
					}
				}()
				const regs = 3
				rng := rand.New(rand.NewSource(int64(500*workers + g)))
				striped, scalar := newStripedPair(t, 3, regs, 1, rng)
				striped.SetStriped(pool, 1)
				for i := 0; i < 60; i++ {
					in := randomInstr(rng, striped.Top.Q, regs)
					striped.Exec(in)
					scalar.Exec(in)
				}
				if !striped.Snapshot().Equal(scalar.Snapshot()) {
					errs <- fmt.Errorf("workers=%d goroutine %d: striped state diverged", workers, g)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// FuzzExecStriped feeds arbitrary instruction streams through the striped and
// scalar paths on one machine geometry per seed.
func FuzzExecStriped(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(99), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, wb uint8) {
		r := int(wb)%3 + 1
		workers := int(wb)%4 + 1
		const regs = 3
		rng := rand.New(rand.NewSource(seed))
		striped, scalar := newStripedPair(t, r, regs, workers, rng)
		for i := 0; i < 40; i++ {
			in := randomInstr(rng, striped.Top.Q, regs)
			striped.Exec(in)
			scalar.Exec(in)
		}
		if !striped.Snapshot().Equal(scalar.Snapshot()) {
			t.Fatalf("r=%d workers=%d seed=%d: striped state diverged", r, workers, seed)
		}
	})
}
