package parttsolve

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
)

// TestABFTHealthyBitIdentical: with Verify on and a healthy machine, every
// engine still matches the sequential DP bit for bit and performs no repairs.
func TestABFTHealthyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, kind := range []EngineKind{Lockstep, Goroutine, CCC} {
		for trial := 0; trial < 3; trial++ {
			p := randomProblem(rng, 4, 3+rng.Intn(3))
			want, err := core.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := SolveOpts(context.Background(), p, kind, Options{Verify: true})
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if res.Cost != want.Cost {
				t.Fatalf("%v: cost %d, want %d", kind, res.Cost, want.Cost)
			}
			if res.Repairs != 0 {
				t.Fatalf("%v: healthy run performed %d repairs", kind, res.Repairs)
			}
			for s := range want.C {
				if res.C[s] != want.C[s] || res.Choice[s] != want.Choice[s] {
					t.Fatalf("%v: plane mismatch at %v", kind, core.Set(s))
				}
			}
		}
	}
}

// TestABFTRepairsTransientCorruption: a one-shot silent corruption of the
// machine state is detected at the next barrier, repaired from the mirror,
// and the solve completes with the right answer and Repairs = 1.
func TestABFTRepairsTransientCorruption(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(72)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]func(c *Cell){
		"cost-plane": func(c *Cell) { c.M ^= 0xff },
		"argmin":     func(c *Cell) { c.MI ^= 1 },
		"psum":       func(c *Cell) { c.PS += 3 },
		"mark":       func(c *Cell) { c.Mark = !c.Mark },
	} {
		fired := false
		abftCorruptHook = func(round int, state []Cell) {
			if round == 2 && !fired {
				fired = true
				corrupt(&state[len(state)/2])
			}
		}
		res, err := SolveOpts(context.Background(), p, Lockstep, Options{Verify: true})
		abftCorruptHook = nil
		if err != nil {
			t.Fatalf("%s: transient corruption was not repaired: %v", name, err)
		}
		if !fired {
			t.Fatalf("%s: corruption hook never fired", name)
		}
		if res.Cost != want.Cost {
			t.Fatalf("%s: cost %d, want %d", name, res.Cost, want.Cost)
		}
		if res.Repairs != 1 {
			t.Fatalf("%s: Repairs = %d, want 1", name, res.Repairs)
		}
		for s := range want.C {
			if res.C[s] != want.C[s] || res.Choice[s] != want.Choice[s] {
				t.Fatalf("%s: plane mismatch at %v after repair", name, core.Set(s))
			}
		}
	}
}

// TestABFTRefusesPersistentCorruption: a fault that re-asserts itself during
// the repair re-run must end the solve with a typed certify.LevelError — a
// wrong answer is never returned.
func TestABFTRefusesPersistentCorruption(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(73)), 4, 5)
	abftCorruptHook = func(round int, state []Cell) {
		if round == 2 {
			state[len(state)/2].M ^= 0xff // every attempt, including the re-run
		}
	}
	defer func() { abftCorruptHook = nil }()
	_, err := SolveOpts(context.Background(), p, Lockstep, Options{Verify: true})
	var lerr *certify.LevelError
	if !errors.As(err, &lerr) {
		t.Fatalf("err = %v, want *certify.LevelError", err)
	}
	if lerr.Engine != "lockstep" || lerr.Level != 2 {
		t.Fatalf("LevelError = %+v, want engine lockstep at level 2", lerr)
	}
	if len(lerr.Report.Violations) == 0 {
		t.Fatal("LevelError carries no violations")
	}
}

// TestABFTUnverifiedRunsIgnoreHook: without Verify, the corruption goes
// undetected (that is the threat the layer exists for) — pinning that the
// hook itself doesn't alter control flow.
func TestABFTUnverifiedCorruptionEscapes(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(74)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	logN := PaddedLogN(len(p.Actions))
	abftCorruptHook = func(round int, state []Cell) {
		if round == p.K {
			// Corrupt the C(U) representative cell after the last round.
			state[(len(state)-1)>>uint(logN)<<uint(logN)].M = 1
		}
	}
	defer func() { abftCorruptHook = nil }()
	res, err := SolveOpts(context.Background(), p, Lockstep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == want.Cost {
		t.Skip("corruption did not change the answer on this instance")
	}
	// The wrong answer sailed through: exactly what serve-side certification
	// and Options.Verify exist to stop.
}

// TestABFTVerifiedResume: a verified solve resumed from a mid-sweep frontier
// seeds its mirror from the checkpoint and still matches the DP.
func TestABFTVerifiedResume(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(75)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	// Build a level-2 frontier from the completed planes.
	f := &core.Frontier{Level: 2, C: make([]uint64, len(full.C)), Choice: make([]int32, len(full.C))}
	for s := range full.C {
		if popcount(s) <= 2 {
			f.C[s], f.Choice[s] = full.C[s], full.Choice[s]
		} else {
			f.C[s], f.Choice[s] = core.Inf, -1
		}
	}
	res, err := SolveOpts(context.Background(), p, Lockstep, Options{Frontier: f, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || res.Repairs != 0 {
		t.Fatalf("resumed verified solve: cost %d (want %d), repairs %d", res.Cost, want.Cost, res.Repairs)
	}
}
