package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
)

// AblationWavefront is ablation A2 measured on the real machine: a global
// minimum reduction executed with the naive per-dimension schedule (one full
// ring turn per high dimension) versus the pipelined wavefront (one turn for
// all of them). Both produce identical results; the instruction counts show
// the Θ(Q) separation that makes Preparata–Vuillemin pipelining essential on
// large machines.
func AblationWavefront() (*Table, error) {
	t := &Table{
		ID:         "A2",
		Title:      "naive vs pipelined CCC schedule (BVM instruction counts)",
		PaperClaim: "ASCEND on the CCC at constant slowdown requires the pipelined schedule (§3)",
		Header:     []string{"machine", "Q", "naive instr", "wavefront instr", "advantage"},
	}
	const w = 10
	for r := 1; r <= 3; r++ {
		naive, err := bvm.New(r, bvm.DefaultRegisters)
		if err != nil {
			return nil, err
		}
		pipe, err := bvm.New(r, bvm.DefaultRegisters)
		if err != nil {
			return nil, err
		}
		val, shadow := bvmalg.Word{Base: 0, Width: w}, bvmalg.Word{Base: w, Width: w}
		rng := rand.New(rand.NewSource(int64(r)))
		for pe := 0; pe < naive.N(); pe++ {
			v := uint64(rng.Intn(1000))
			naive.SetUint(val.Base, w, pe, v)
			pipe.SetUint(val.Base, w, pe, v)
		}
		bvmalg.MinReduce(naive, val, 0, naive.Top.AddrBits, shadow, 40)
		bvmalg.MinReduceAllWavefront(pipe, val, shadow, 40)
		for pe := 0; pe < naive.N(); pe++ {
			if naive.Uint(val.Base, w, pe) != pipe.Uint(val.Base, w, pe) {
				return nil, fmt.Errorf("experiments: schedules disagree at PE %d (r=%d)", pe, r)
			}
		}
		t.AddRow(fmt.Sprintf("%d PEs", naive.N()), naive.Top.Q,
			naive.InstrCount, pipe.InstrCount,
			fmt.Sprintf("%.1fx", float64(naive.InstrCount)/float64(pipe.InstrCount)))
	}
	t.Notes = append(t.Notes,
		"results verified identical PE by PE before reporting",
		"the advantage grows as Θ(Q): at the paper's 2^20-PE machine (Q=16) the naive schedule is ~5x slower")
	return t, nil
}
