package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-engine circuit breaker. After `threshold` consecutive
// solve failures the breaker opens and the engine is skipped (its fallback
// runs instead of burning a full solve budget on a sick engine every
// request). After `cooldown` it lets exactly one probe attempt through
// (half-open); a successful probe closes it, a failed one re-opens it for
// another cooldown. Context errors never reach the breaker — a deadline says
// the instance was big, not that the engine is broken.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool  // the single half-open probe is in flight
	opens    int64 // lifetime count of closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a solve attempt may proceed right now.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed solve and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a failed solve: a failed half-open probe re-opens
// immediately, and the threshold-th consecutive failure opens a closed
// breaker.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip moves to open; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.failures = 0
	b.opens++
}

// snapshot renders the breaker for /v1/stats.
func (b *breaker) snapshot() map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	return map[string]any{
		"state":                b.state.String(),
		"consecutive_failures": b.failures,
		"opens":                b.opens,
	}
}
