package bvmcheck_test

import (
	"context"
	"sort"
	"sync"
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmcheck"
	"repro/internal/bvmtt"
	"repro/internal/core"
)

// This file fuzzes the abft-window lint differentially: mutants of the real
// solver's recorded program — marks shifted, dropped, duplicated, re-covered,
// kind-flipped — are linted and compared against an independent oracle that
// re-derives the documented mark-window semantics from scratch. Every harmful
// mutant must be flagged, and every harmless one must lint clean; the seeded
// corpus pins one mutant per defect class.

// solverProgram records the §6 tt solve (with ABFT instrumentation live)
// once; every fuzz iteration mutates a copy of its mark list.
var solverProgram = sync.OnceValues(func() (*bvm.Program, error) {
	p := &core.Problem{
		K:       3,
		Weights: []uint64{4, 2, 1},
		Actions: []core.Action{
			{Name: "t01", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "r0", Set: core.SetOf(0), Cost: 3, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 3, Treatment: true},
			{Name: "r2", Set: core.SetOf(2), Cost: 5, Treatment: true},
		},
	}
	res, err := bvmtt.SolveOpts(context.Background(), p, bvmtt.Options{Record: true, Verify: true})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
})

// Mutation opcodes: op % nMutations selects the defect class.
const (
	mutShift    = iota // slide a mark's instruction boundary by delta
	mutDrop            // delete a mark (orphans its partner)
	mutCover           // extend a mark's coverage by one register
	mutUncover         // shrink a mark's coverage
	mutFlipKind        // checksum <-> barrier
	mutDup             // duplicate a mark at a shifted boundary
	nMutations
)

// mutate applies one deterministic mutation to a copy of p's marks. The
// instruction stream is shared: the lint and the oracle both only read it.
func mutate(p *bvm.Program, op, markSel uint8, delta int16, reg uint8) *bvm.Program {
	marks := append([]bvm.Mark(nil), p.Marks...)
	out := &bvm.Program{Name: p.Name + "-mutant", Instrs: p.Instrs}
	if len(marks) == 0 {
		out.Marks = marks
		return out
	}
	i := int(markSel) % len(marks)
	clamp := func(idx int) int {
		if idx < 0 {
			return 0
		}
		if idx > len(p.Instrs) {
			return len(p.Instrs)
		}
		return idx
	}
	switch int(op) % nMutations {
	case mutShift:
		marks[i].Index = clamp(marks[i].Index + int(delta))
	case mutDrop:
		marks = append(marks[:i], marks[i+1:]...)
	case mutCover:
		regs := append([]int(nil), marks[i].Regs...)
		marks[i].Regs = append(regs, int(reg))
	case mutUncover:
		if n := len(marks[i].Regs); n > 0 {
			marks[i].Regs = append([]int(nil), marks[i].Regs[:n-1]...)
		}
	case mutFlipKind:
		switch marks[i].Kind {
		case bvm.MarkABFTChecksum:
			marks[i].Kind = bvm.MarkABFTBarrier
		case bvm.MarkABFTBarrier:
			marks[i].Kind = bvm.MarkABFTChecksum
		}
	case mutDup:
		dup := marks[i]
		dup.Index = clamp(dup.Index + int(delta))
		dup.Regs = append([]int(nil), dup.Regs...)
		marks = append(marks, bvm.Mark{})
		copy(marks[i+1:], marks[i:])
		marks[i+1] = dup
	}
	out.Marks = marks
	return out
}

// abftOracle is an independent re-derivation of the mark-window contract:
// a barrier closes the nearest preceding open checksum (a fresh checksum
// supersedes an open one), writes to covered registers inside a closed
// window are violations, a barrier with nothing open is an orphan, and a
// checksum still open at the end is never verified.
type abftOracle struct {
	windowWrites   []int // instruction indices of in-window covered writes
	orphanBarriers int
	dangling       bool
}

func runOracle(p *bvm.Program) abftOracle {
	var o abftOracle
	open := -1 // index into p.Marks of the governing checksum
	for mi, mk := range p.Marks {
		switch mk.Kind {
		case bvm.MarkABFTChecksum:
			open = mi
		case bvm.MarkABFTBarrier:
			if open < 0 {
				o.orphanBarriers++
				continue
			}
			cs := p.Marks[open]
			covered := map[int]bool{}
			for _, r := range cs.Regs {
				covered[r] = true
			}
			for j := cs.Index; j < mk.Index && j < len(p.Instrs); j++ {
				dst := p.Instrs[j].Dst
				if dst.Kind == bvm.KindR && covered[dst.Index] {
					o.windowWrites = append(o.windowWrites, j)
				}
			}
			open = -1
		}
	}
	o.dangling = open >= 0
	return o
}

func FuzzABFTWindowMutants(f *testing.F) {
	base, err := solverProgram()
	if err != nil {
		f.Fatal(err)
	}
	if len(base.Marks) == 0 {
		f.Fatal("solver program carries no ABFT marks; the fuzz would be vacuous")
	}
	cfg, err := bvmcheck.DefaultConfig(2)
	if err != nil {
		f.Fatal(err)
	}

	// Seeded defect corpus: one mutant per class, plus a harmless identity.
	f.Add(uint8(mutShift), uint8(1), int16(-500), uint8(0)) // barrier dragged far left: window swallows writes
	f.Add(uint8(mutShift), uint8(0), int16(0), uint8(0))    // zero shift: harmless identity
	f.Add(uint8(mutDrop), uint8(1), int16(0), uint8(0))     // dropped barrier: dangling checksum
	f.Add(uint8(mutDrop), uint8(0), int16(0), uint8(0))     // dropped checksum: orphan barrier
	f.Add(uint8(mutCover), uint8(0), int16(0), uint8(1))    // checksum claims a register the window writes
	f.Add(uint8(mutUncover), uint8(0), int16(0), uint8(0))  // narrower coverage: still clean
	f.Add(uint8(mutFlipKind), uint8(0), int16(0), uint8(0)) // checksum turned barrier: orphans
	f.Add(uint8(mutDup), uint8(1), int16(200), uint8(0))    // duplicated barrier: second one orphaned

	f.Fuzz(func(t *testing.T, op, markSel uint8, delta int16, reg uint8) {
		mutant := mutate(base, op, markSel, delta, reg)
		want := runOracle(mutant)
		rep := bvmcheck.Lint(mutant, cfg)

		var gotWrites []int
		var gotOrphans int
		var gotDangling int
		for _, d := range rep.Diags {
			if d.Category != bvmcheck.CatABFTWindow {
				continue
			}
			switch {
			case d.Index >= 0:
				gotWrites = append(gotWrites, d.Index)
			case d.Index == -1 && containsStr(d.Message, "no preceding abft-checksum"):
				gotOrphans++
			case d.Index == -1 && containsStr(d.Message, "never verified"):
				gotDangling++
			default:
				t.Fatalf("unclassifiable abft-window diagnostic: %+v", d)
			}
		}
		sort.Ints(gotWrites)
		wantWrites := append([]int(nil), want.windowWrites...)
		sort.Ints(wantWrites)
		if !equalInts(gotWrites, wantWrites) {
			t.Errorf("window-write diags at %v, oracle says %v (op=%d sel=%d delta=%d reg=%d)",
				gotWrites, wantWrites, op, markSel, delta, reg)
		}
		if gotOrphans != want.orphanBarriers {
			t.Errorf("orphan-barrier diags = %d, oracle says %d", gotOrphans, want.orphanBarriers)
		}
		wantDangling := 0
		if want.dangling {
			wantDangling = 1
		}
		if gotDangling != wantDangling {
			t.Errorf("dangling-checksum diags = %d, oracle says %d", gotDangling, wantDangling)
		}

		// The contract the corpus exists for: every harmful mutant is flagged,
		// every harmless one lints clean.
		harmful := len(want.windowWrites) > 0 || want.orphanBarriers > 0 || want.dangling
		flagged := len(gotWrites) > 0 || gotOrphans > 0 || gotDangling > 0
		if harmful != flagged {
			t.Fatalf("harmful=%v but flagged=%v (op=%d sel=%d delta=%d reg=%d)",
				harmful, flagged, op, markSel, delta, reg)
		}
	})
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
