package chaos_test

import (
	"context"
	"errors"
	"math/rand"
	"syscall"
	"testing"

	"repro/internal/bvmtt"
	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/parttsolve"
)

func genProblem(seed int64, k, nActions int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(5) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(8) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	p.Actions = append(p.Actions, core.Action{Set: core.Universe(k), Cost: 20, Treatment: true})
	return p
}

// engine adapts each solver to one shape so every resilience property is
// provable across all of them with the same loop.
type engine struct {
	name     string
	k        int // instance size: the bit-level bvm engine gets a smaller one
	costOnly bool
	run      func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error)
}

func engines() []engine {
	return []engine{
		{name: "seq", k: 6, run: func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error) {
			sol, err := core.SolveCheckpointedCtx(ctx, p, f, ck)
			if err != nil {
				return 0, nil, nil, err
			}
			return sol.Cost, sol.C, sol.Choice, nil
		}},
		{name: "parallel", k: 6, run: func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error) {
			sol, err := core.SolveParallelCheckpointedCtx(ctx, p, 3, f, ck)
			if err != nil {
				return 0, nil, nil, err
			}
			return sol.Cost, sol.C, sol.Choice, nil
		}},
		{name: "lockstep", k: 6, run: func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error) {
			res, err := parttsolve.SolveCheckpointedCtx(ctx, p, parttsolve.Lockstep, f, ck)
			if err != nil {
				return 0, nil, nil, err
			}
			return res.Cost, res.C, res.Choice, nil
		}},
		{name: "goroutine", k: 5, run: func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error) {
			res, err := parttsolve.SolveCheckpointedCtx(ctx, p, parttsolve.Goroutine, f, ck)
			if err != nil {
				return 0, nil, nil, err
			}
			return res.Cost, res.C, res.Choice, nil
		}},
		{name: "bvm", k: 4, costOnly: true, run: func(ctx context.Context, p *core.Problem, f *core.Frontier, ck core.Checkpointer) (uint64, []uint64, []int32, error) {
			res, err := bvmtt.SolveCheckpointedCtx(ctx, p, 0, f, ck)
			if err != nil {
				return 0, nil, nil, err
			}
			return res.Cost, res.C, nil, nil
		}},
	}
}

func compare(t *testing.T, label string, want *core.Solution, cost uint64, c []uint64, choice []int32) {
	t.Helper()
	if cost != want.Cost {
		t.Fatalf("%s: cost %d, want %d", label, cost, want.Cost)
	}
	for s := range want.C {
		if c[s] != want.C[s] {
			t.Fatalf("%s: C[%d] = %d, want %d", label, s, c[s], want.C[s])
		}
		if choice != nil && choice[s] != want.Choice[s] {
			t.Fatalf("%s: Choice[%d] = %d, want %d", label, s, choice[s], want.Choice[s])
		}
	}
}

// TestKillAtEveryLevelResume is the tentpole guarantee: kill every engine at
// every level barrier right after its durable checkpoint, reload that
// checkpoint from disk, resume on the same engine, and require the result to
// be bit-identical to an uninterrupted sequential solve.
func TestKillAtEveryLevelResume(t *testing.T) {
	ctx := context.Background()
	for _, eng := range engines() {
		p := genProblem(41, eng.k, 5)
		want, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		hash, err := checkpoint.ProblemHash(p)
		if err != nil {
			t.Fatal(err)
		}
		for level := 1; level < p.K; level++ {
			dir := t.TempDir()
			w, err := checkpoint.NewWriter(nil, dir, p, hash, eng.name, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, _, _, err = eng.run(ctx, p, nil, &chaos.Kill{Inner: w, Level: level})
			if !errors.Is(err, chaos.ErrKilled) {
				t.Fatalf("%s: kill at level %d not delivered: %v", eng.name, level, err)
			}
			snaps, discard, err := checkpoint.Scan(nil, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) != 1 || len(discard) != 0 {
				t.Fatalf("%s level %d: scan found %d snapshots, %d discards", eng.name, level, len(snaps), len(discard))
			}
			snap := snaps[0]
			if snap.Level != level || snap.Engine != eng.name || snap.Hash != hash {
				t.Fatalf("%s: snapshot %+v after kill at level %d", eng.name, snap, level)
			}
			if eng.costOnly == snap.Frontier.HasChoice() {
				t.Fatalf("%s: costOnly=%v but HasChoice=%v", eng.name, eng.costOnly, snap.Frontier.HasChoice())
			}
			cost, c, choice, err := eng.run(ctx, snap.Problem, snap.Frontier, nil)
			if err != nil {
				t.Fatalf("%s: resume from level %d: %v", eng.name, level, err)
			}
			compare(t, eng.name, want, cost, c, choice)
		}
	}
}

// TestCrossEngineResume proves a frontier is engine-portable: a checkpoint
// written by the sequential engine resumes on every other engine (the DP
// tables are canonical, not engine state), and a cost-only bvm checkpoint
// resumes only on bvm — choice-producing engines must reject it cleanly.
func TestCrossEngineResume(t *testing.T) {
	ctx := context.Background()
	p := genProblem(17, 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := checkpoint.ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := checkpoint.NewWriter(nil, dir, p, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = engines()[0].run(ctx, p, nil, &chaos.Kill{Inner: w, Level: 2})
	if !errors.Is(err, chaos.ErrKilled) {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(nil, w.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range engines() {
		cost, c, choice, err := eng.run(ctx, p, snap.Frontier, nil)
		if err != nil {
			t.Fatalf("%s: cross-engine resume: %v", eng.name, err)
		}
		compare(t, "seq frontier on "+eng.name, want, cost, c, choice)
	}

	// The reverse direction: a cost-only frontier must be rejected by every
	// engine that has to produce argmins, and accepted by bvm.
	costOnly := &core.Frontier{Level: snap.Frontier.Level, C: snap.Frontier.C}
	for _, eng := range engines() {
		cost, c, _, err := eng.run(ctx, p, costOnly, nil)
		if eng.costOnly {
			if err != nil {
				t.Fatalf("bvm rejected a cost-only frontier: %v", err)
			}
			compare(t, "cost-only on bvm", want, cost, c, nil)
			continue
		}
		if err == nil {
			t.Fatalf("%s accepted a cost-only frontier", eng.name)
		}
	}
}

// TestDiskFullMidSolve runs the checkpoint store on a disk that fills up
// mid-solve, leaving torn temp residue. The solve surfaces ENOSPC, the last
// published checkpoint survives intact, the torn file is quarantined by
// Scan, and the resume is bit-identical.
func TestDiskFullMidSolve(t *testing.T) {
	ctx := context.Background()
	p := genProblem(29, 5, 4)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := checkpoint.ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := &chaos.FaultFS{FailWriteAt: 3, TornBytes: 9}
	w, err := checkpoint.NewWriter(ffs, dir, p, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.SolveCheckpointedCtx(ctx, p, nil, w)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("disk-full not surfaced: %v", err)
	}
	if ffs.Writes() != 3 {
		t.Fatalf("%d writes, want 3 (two published levels, one failure)", ffs.Writes())
	}
	snaps, discard, err := checkpoint.Scan(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Level != 2 {
		t.Fatalf("surviving snapshots: %+v", snaps)
	}
	if len(discard) != 1 {
		t.Fatalf("torn temp file not quarantined: %v", discard)
	}
	sol, err := core.SolveCheckpointedCtx(ctx, p, snaps[0].Frontier, nil)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "resume after ENOSPC", want, sol.Cost, sol.C, sol.Choice)
}

// TestRenameFailure breaks the publish step itself: the write of the temp
// file succeeds but the atomic rename fails, so the previous published
// checkpoint must remain the live one.
func TestRenameFailure(t *testing.T) {
	ctx := context.Background()
	p := genProblem(29, 5, 4)
	hash, err := checkpoint.ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := &chaos.FaultFS{FailRenameAt: 2}
	w, err := checkpoint.NewWriter(ffs, dir, p, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.SolveCheckpointedCtx(ctx, p, nil, w)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename failure not surfaced: %v", err)
	}
	snaps, discard, err := checkpoint.Scan(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Level != 1 {
		t.Fatalf("surviving snapshots: %+v", snaps)
	}
	if len(discard) != 1 {
		t.Fatalf("unpublished temp file not quarantined: %v", discard)
	}
}

// TestKillWithoutCheckpointer: dying with no durable state is still safe —
// there is nothing to scan and a fresh solve is simply correct.
func TestKillWithoutCheckpointer(t *testing.T) {
	p := genProblem(7, 5, 4)
	_, err := core.SolveCheckpointedCtx(context.Background(), p, nil, &chaos.Kill{Level: 2})
	if !errors.Is(err, chaos.ErrKilled) {
		t.Fatal(err)
	}
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveCheckpointedCtx(context.Background(), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "fresh solve", want, sol.Cost, sol.C, sol.Choice)
}

func TestFailFirstAndPanicFirst(t *testing.T) {
	boom := errors.New("boom")
	hook := chaos.FailFirst("bvm", 2, boom)
	if err := hook("seq"); err != nil {
		t.Fatalf("wrong engine failed: %v", err)
	}
	if err := hook("bvm"); !errors.Is(err, boom) {
		t.Fatal("first bvm call did not fail")
	}
	if err := hook("bvm"); !errors.Is(err, boom) {
		t.Fatal("second bvm call did not fail")
	}
	if err := hook("bvm"); err != nil {
		t.Fatalf("bvm did not heal: %v", err)
	}

	ph := chaos.PanicFirst("seq", 1, "kaboom")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first seq call did not panic")
			}
		}()
		_ = ph("seq")
	}()
	if err := ph("seq"); err != nil {
		t.Fatalf("seq did not heal: %v", err)
	}
}
