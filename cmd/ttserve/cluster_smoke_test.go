package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/serve"
	"repro/internal/workload"
)

// TestClusterSmoke is the `make cluster-smoke` sequence: build the real
// ttserve and ttworker binaries, stand up a three-worker fleet in which one
// worker is persistently malicious, SIGKILL another mid-solve, and require
// the coordinator to detect both — the rejected planes attributed, the dead
// worker's slices reassigned — while still returning the certified answer,
// bit-identical to the single-process reference. Then kill the rest of the
// fleet and require the server to fail closed rather than serve uncertified.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server and worker processes")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "ttserve")
	workerBin := filepath.Join(dir, "ttworker")
	if out, err := exec.Command("go", "build", "-o", serveBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ttserve: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", workerBin, "../ttworker").CombinedOutput(); err != nil {
		t.Fatalf("building ttworker: %v\n%s", err, out)
	}

	victim, victimAddr := startWorker(t, workerBin, "-id", "victim")
	honest, honestAddr := startWorker(t, workerBin, "-id", "honest")
	evil, evilAddr := startWorker(t, workerBin, "-id", "evil", "-fault", "malicious")
	fleet := strings.Join([]string{victimAddr, honestAddr, evilAddr}, ",")

	// Full-audit certification and no fallback: every plane is recomputed
	// cell by cell, and a cluster failure must surface, not degrade.
	_, url := startServer(t, serveBin,
		"-engine", "cluster", "-cluster", fleet,
		"-cluster-audit", "1", "-cluster-deadline", "5s",
		"-certify", "fast", "-no-fallback", "-retries", "-1",
		"-chaos-level-delay", "200ms", "-timeout", "60s")

	p := workload.MedicalDiagnosis(11, 10)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := instio.Write(&body, p, ""); err != nil {
		t.Fatal(err)
	}

	// Scenario A: SIGKILL the victim while the solve is between level
	// barriers (the per-level chaos delay keeps the sweep in flight).
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body.Bytes()))
		done <- result{resp, err}
	}()
	time.Sleep(600 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	var res result
	select {
	case res = <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("solve never returned after the mid-level SIGKILL")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	sr := decodeSolve(t, res.resp)
	if sr.SolvedBy != "cluster" {
		t.Fatalf("solved_by %q, want cluster (no fallback was allowed)", sr.SolvedBy)
	}
	if !sr.Adequate || sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("cluster cost %+v, want %d", sr.Cost, want.Cost)
	}

	stats := getStats(t, url)
	for _, key := range []string{"cluster_solves", "cluster_workers_lost", "cluster_reassigned", "cluster_planes_rejected", "certify_pass"} {
		if n, _ := stats[key].(float64); n < 1 {
			t.Errorf("%s = %v, want >= 1 (stats: %v)", key, stats[key], stats)
		}
	}
	goroutines := pprofGoroutines(t, url)
	if goroutines > 50 {
		t.Errorf("%d goroutines resident after the solve — the coordinator is leaking", goroutines)
	}

	// Scenario B: the whole fleet is gone. A fresh instance must fail
	// closed — 5xx, never a wrong or uncertified answer.
	for _, w := range []*exec.Cmd{honest, evil} {
		w.Process.Kill()
		w.Wait()
	}
	p2 := workload.MedicalDiagnosis(7, 8)
	var body2 bytes.Buffer
	if err := instio.Write(&body2, p2, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("quorum loss answered with status %d, want 5xx", resp.StatusCode)
	}
	if after := pprofGoroutines(t, url); after > goroutines+20 {
		t.Errorf("goroutines grew %d -> %d across the failed solve", goroutines, after)
	}
}

// startWorker launches a built ttworker on a random port and returns the
// running command plus its bound address, parsed from the ready log line.
func startWorker(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "ttworker listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						addrCh <- a
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("worker never logged its listen address")
		return nil, ""
	}
}

// pprofGoroutines reads the resident goroutine count from the server's
// pprof endpoint.
func pprofGoroutines(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var n int
	if _, err := fmt.Fscanf(resp.Body, "goroutine profile: total %d", &n); err != nil {
		t.Fatalf("parsing goroutine profile: %v", err)
	}
	return n
}

func decodeSolve(t *testing.T, resp *http.Response) *serve.SolveResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}
