package cccsim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBitonicSortCCC: the same DESCEND passes that sort a hypercube sort the
// 3-link machine, at the usual constant slowdown.
func TestBitonicSortCCC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sizes := map[int]int{1: 8, 2: 64, 3: 2048}
	dims := map[int]int{1: 3, 2: 6, 3: 11}
	for r := 1; r <= 3; r++ {
		n := sizes[r]
		vals := make([]uint64, n)
		want := make([]uint64, n)
		for i := range vals {
			v := uint64(rng.Intn(100000))
			vals[i] = v
			want[i] = v
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got, steps, err := BitonicSort(r, vals)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("r=%d: position %d = %d, want %d", r, i, got[i], want[i])
			}
		}
		dim := dims[r]
		hcSteps := dim * (dim + 1) / 2
		if steps < hcSteps || steps > 8*hcSteps {
			t.Errorf("r=%d: %d CCC steps vs %d hypercube (ratio %.1f)",
				r, steps, hcSteps, float64(steps)/float64(hcSteps))
		}
	}
}

func TestBitonicSortCCCBadLength(t *testing.T) {
	if _, _, err := BitonicSort(1, make([]uint64, 7)); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, _, err := BitonicSort(9, make([]uint64, 8)); err == nil {
		t.Fatal("bad r accepted")
	}
}

func BenchmarkBitonicSortCCC(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 2048)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BitonicSort(3, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenesRoutingOnCCC reproduces the paper's §2 claim: any permutation in
// O(log n) time on the BVM's network, given precalculated control bits.
func TestBenesRoutingOnCCC(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := map[int]int{1: 3, 2: 6, 3: 11}
	for r := 1; r <= 3; r++ {
		n := map[int]int{1: 8, 2: 64, 3: 2048}[r]
		dest := rng.Perm(n)
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(5000 + i)
		}
		out, steps, err := RoutePermutation(r, values, dest)
		if err != nil {
			t.Fatal(err)
		}
		for i := range values {
			if out[dest[i]] != values[i] {
				t.Fatalf("r=%d: element from %d not at %d", r, i, dest[i])
			}
		}
		// Two pipelined sweeps: bounded by a constant times q = log n.
		q := dims[r]
		if steps > 12*q {
			t.Errorf("r=%d: %d CCC steps for q=%d — not O(log n) with small constant", r, steps, q)
		}
	}
}

func TestBenesRoutingOnCCCBadInput(t *testing.T) {
	if _, _, err := RoutePermutation(1, make([]uint64, 7), nil); err == nil {
		t.Fatal("short values accepted")
	}
	if _, _, err := RoutePermutation(1, make([]uint64, 8), []int{0, 1, 2}); err == nil {
		t.Fatal("short dest accepted")
	}
}
