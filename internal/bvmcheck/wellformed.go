package bvmcheck

import (
	"fmt"

	"repro/internal/bvm"
)

// checkWellFormed validates every instruction against the machine geometry.
// Error-severity diagnostics correspond one-to-one to Machine.Exec panics;
// warnings are legal constructions that are almost certainly mistakes
// (duplicate activation positions, activation sets that enable no PE).
func checkWellFormed(p *bvm.Program, cfg Config) []Diag {
	var diags []Diag
	emit := func(i int, sev Severity, cat, format string, args ...any) {
		d := Diag{Index: i, Severity: sev, Category: cat, Message: fmt.Sprintf(format, args...)}
		if i >= 0 && i < p.Len() {
			d.Instr = p.Instrs[i].String()
		}
		diags = append(diags, d)
	}
	for i, in := range p.Instrs {
		// Destination: B is written by the g half, never by f.
		if in.Dst.Kind == bvm.KindB {
			emit(i, SevError, CatBadDestination, "B cannot be the f destination; it is written by the g half")
		} else {
			checkRef(emit, i, "destination", in.Dst, cfg)
		}
		checkRef(emit, i, "F operand", in.F, cfg)
		checkRef(emit, i, "D operand", in.D.Reg, cfg)
		if !knownRoute(in.D.Via) {
			emit(i, SevError, CatBadRoute, "D operand routed through unknown link %d (machine links: S, P, L, XS, XP, I)", uint8(in.D.Via))
		}
		checkActivation(emit, i, in, cfg)
	}
	return diags
}

func checkRef(emit func(int, Severity, string, string, ...any), i int, role string, r bvm.RegRef, cfg Config) {
	switch r.Kind {
	case bvm.KindA, bvm.KindB, bvm.KindE:
		return
	case bvm.KindR:
		if r.Index < 0 || r.Index >= cfg.Registers {
			emit(i, SevError, CatBadRegister, "%s R[%d] out of range [0,%d)", role, r.Index, cfg.Registers)
		}
	default:
		emit(i, SevError, CatBadRegister, "%s has unknown register kind %d", role, uint8(r.Kind))
	}
}

func knownRoute(r bvm.Route) bool {
	switch r {
	case bvm.Local, bvm.RouteS, bvm.RouteP, bvm.RouteL, bvm.RouteXS, bvm.RouteXP, bvm.RouteI:
		return true
	}
	return false
}

func checkActivation(emit func(int, Severity, string, string, ...any), i int, in bvm.Instr, cfg Config) {
	c := in.Cond
	if c == nil {
		return
	}
	Q := cfg.Top.Q
	seen := make(map[int]bool, len(c.Positions))
	valid := 0
	for _, pos := range c.Positions {
		if pos < 0 || pos >= Q {
			emit(i, SevError, CatBadActivation, "activation position %d out of range [0,%d)", pos, Q)
			continue
		}
		if seen[pos] {
			emit(i, SevWarning, CatBadActivation, "duplicate activation position %d", pos)
			continue
		}
		seen[pos] = true
		valid++
	}
	// An activation that enables no in-cycle position makes the instruction
	// a no-op on every PE — except writes to E, which ignore masks.
	enabled := valid
	if c.Negate {
		enabled = Q - valid
	}
	if enabled == 0 && in.Dst.Kind != bvm.KindE {
		emit(i, SevWarning, CatBadActivation, "activation enables no in-cycle position; instruction has no effect")
	}
}
