// Binarytesting: the classical problem the paper generalizes. Builds uniform
// binary-testing instances (k objects, unit-cost bit tests, expensive
// singleton terminals), verifies the theoretical optimum k·(log2 k + c), and
// shows where the greedy heuristic and the full TT machinery diverge once
// weights are skewed.
//
//	go run ./examples/binarytesting
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	const treatCost = 60
	fmt.Println("uniform binary testing: optimal = k·(log2 k + treatCost)")
	fmt.Println("k    optimal    theory     greedy")
	for _, k := range []int{2, 4, 8, 16} {
		p := workload.BinaryTestingUniform(k, treatCost)
		sol, err := core.Solve(p)
		if err != nil {
			log.Fatal(err)
		}
		b := 0
		for 1<<uint(b) < k {
			b++
		}
		theory := uint64(k * (b + treatCost))
		g, err := core.GreedyCost(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10d %-10d %-10d\n", k, sol.Cost, theory, g)
		if sol.Cost != theory {
			log.Fatalf("k=%d: optimum %d != theory %d", k, sol.Cost, theory)
		}
	}

	// Skewed weights: the balanced key is no longer optimal; the optimal
	// procedure probes the heavy object first (a Huffman-like effect), and —
	// this is the paper's generalization — with a cheap treatment available
	// it may *treat before finishing the diagnosis*.
	fmt.Println("\nskewed weights (Zipf) with a cheap treatment for the common object:")
	weights := []uint64{32, 8, 2, 1}
	tests := []core.Action{
		{Name: "bit-0", Set: core.SetOf(1, 3), Cost: 1},
		{Name: "bit-1", Set: core.SetOf(2, 3), Cost: 1},
		{Name: "probe-heavy", Set: core.SetOf(0), Cost: 1},
	}
	p := core.BinaryTesting(weights, tests, treatCost)
	p.Actions = append(p.Actions, core.Action{
		Name: "cheap-fix-0", Set: core.SetOf(0), Cost: 3, Treatment: true,
	})
	sol, err := core.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cost %d; procedure:\n%s", sol.Cost, tree.Render(p))

	root := p.Actions[tree.Action]
	if root.Treatment {
		fmt.Println("\nthe optimal root action is a TREATMENT — impossible in pure binary testing,")
		fmt.Println("and exactly the behaviour the test-and-treatment generalization buys.")
	}
}
