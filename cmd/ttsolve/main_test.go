package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

const sample = `{
  "weights": [1, 1],
  "actions": [
    {"name": "t0", "objects": [0], "cost": 1, "treatment": true},
    {"name": "t1", "objects": [1], "cost": 1, "treatment": true},
    {"name": "probe", "objects": [0], "cost": 1}
  ]
}`

func TestRejectsGarbageInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(`{"bogus": 1}`), &out); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRunEngines(t *testing.T) {
	for _, engine := range []string{"seq", "lockstep", "goroutine", "ccc", "bvm"} {
		var out strings.Builder
		err := run([]string{"-engine", engine}, strings.NewReader(sample), &out)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out.String(), "C(U) = 3") {
			t.Errorf("engine %s: output missing cost 3:\n%s", engine, out.String())
		}
	}
}

func TestRunTreeAndGreedy(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tree", "-greedy"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "treat") || !strings.Contains(s, "greedy heuristic cost") {
		t.Errorf("missing tree or greedy output:\n%s", s)
	}
}

func TestRunDOT(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dot"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("missing DOT output:\n%s", out.String())
	}
}

func TestRunStatsAndSimulate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats", "-simulate", "2000"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "stats: ") || !strings.Contains(s, "monte-carlo") {
		t.Errorf("missing stats/simulate output:\n%s", s)
	}
}

func TestRunPolicyAndExplain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.json")
	var out strings.Builder
	if err := run([]string{"-policy", path, "-explain"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "action pricing") || !strings.Contains(out.String(), "reachable states written") {
		t.Errorf("missing policy/explain output:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pol core.Policy
	if err := json.Unmarshal(data, &pol); err != nil {
		t.Fatalf("written policy unreadable: %v", err)
	}
	tree, err := pol.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil {
		t.Fatal("empty policy tree")
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-engine", "warp"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/no/such/file.json"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunToFullDevice pins the flush error path: solving with stdout on
// /dev/full must exit nonzero instead of silently truncating the report.
func TestRunToFullDevice(t *testing.T) {
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("/dev/full not available")
	}
	defer f.Close()
	err = run(nil, strings.NewReader(sample), f)
	if err == nil {
		t.Fatal("writing the report to /dev/full reported success")
	}
	if !strings.Contains(err.Error(), "writing output") {
		t.Fatalf("error does not name the output write: %v", err)
	}
}
