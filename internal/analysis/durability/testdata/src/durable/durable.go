// Seeded true positives and near-miss negatives for the durability analyzer:
// checkpoint failures must cost durability, never answers.
package durable

import (
	"context"
	"fmt"

	"checkpoint"
)

type answer struct{ cost uint64 }

// True positive: the checkpoint error becomes the solve's error — an ENOSPC
// takes down the answer.
func solveAndPersist(w *checkpoint.Writer) (*answer, error) {
	a := &answer{cost: 7}
	if err := w.CheckpointLevel(1); err != nil {
		return nil, err // want "durability error \"err\" flows into this return"
	}
	return a, nil
}

// True positive: returning the durability call directly.
func finish(w *checkpoint.Writer) error {
	return w.Discard() // want "durability error is returned"
}

// True positive: wrapping does not launder the taint.
func wrapped(w *checkpoint.Writer) error {
	err := w.CheckpointLevel(2)
	if err != nil {
		return fmt.Errorf("persist frontier: %w", err) // want "durability error \"err\" flows into this return"
	}
	return nil
}

// True positive: package-level functions taint too.
func resume(dir string) ([]string, error) {
	names, err := checkpoint.Scan(dir)
	if err != nil {
		return nil, err // want "durability error \"err\" flows into this return"
	}
	return names, nil
}

// Negative: the best-effort contract — count it, log it, return nil.
func bestEffort(w *checkpoint.Writer, dropped *int) error {
	if err := w.CheckpointLevel(1); err != nil {
		*dropped++
		return nil
	}
	return nil
}

// Near-miss negative: err is re-assigned from a non-durability source before
// the return; the value flowing out is the solver's, not the checkpointer's.
func relayered(w *checkpoint.Writer, solve func() error) error {
	err := w.CheckpointLevel(1)
	if err != nil {
		err = solve()
	}
	return err
}

// Near-miss negative: a context error returned alongside a swallowed
// durability error is cancellation, not durability.
func withCtx(ctx context.Context, w *checkpoint.Writer) error {
	if err := w.CheckpointLevel(1); err != nil {
		_ = err
	}
	return ctx.Err()
}

// Near-miss negative: inspecting the error (logging, counting) without
// returning it is exactly what best-effort wrappers do.
func counted(w *checkpoint.Writer, log func(string, error)) {
	if err := w.Discard(); err != nil {
		log("discard failed", err)
	}
}

// Negative: codec errors are corruption signals, not durability failures —
// a receiver that swallowed them would merge garbage. They may be returned.
func receivePlane(data []byte) ([]uint64, error) {
	plane, err := checkpoint.DecodePlane(data)
	if err != nil {
		return nil, fmt.Errorf("plane rejected: %w", err)
	}
	return plane, nil
}

// Negative: hashing is codec surface too.
func keyFor(v any) (string, error) {
	return checkpoint.ProblemHash(v)
}

// Near-miss negative: middleware that implements checkpoint.FS is the store
// itself — it must propagate durability errors to the layer that decides.
type faultFS struct{ inner checkpoint.FS }

func (f *faultFS) WriteFile(name string, data []byte) error {
	return f.inner.WriteFile(name, data)
}

func (f *faultFS) Rename(oldname, newname string) error {
	return f.inner.Rename(oldname, newname)
}
