package bvm

import (
	"fmt"
	"sort"
	"strings"
)

// This file adds program capture and disassembly: any sequence of executed
// instructions can be recorded, rendered in the paper's assembly syntax
//
//	{A or R[j]}, B = f, g (F, D, B) (IF or NF) <set>;
//
// and replayed on another machine. The experiment harness uses it to print
// real instruction listings for the §4 algorithms, and the test suite uses
// replay to check that recorded programs are self-contained.

// Program is a recorded instruction sequence. Marks carry in-band metadata
// for static analysis (internal/bvmcheck); they are not instructions, do not
// replay, and do not appear in the assembly text.
type Program struct {
	Name   string
	Instrs []Instr
	Marks  []Mark
}

// Mark annotates an instruction boundary of a recorded program: it sits
// before Instrs[Index] (Index == len(Instrs) marks the end). The ABFT layer
// in bvmtt emits checksum/barrier mark pairs around its plane verifications
// so bvmcheck can warn when a future kernel edit slides a write to a
// checksummed register between a checksum update and its barrier check.
type Mark struct {
	Index int    // instruction boundary the mark precedes
	Kind  string // MarkABFTChecksum, MarkABFTBarrier, ...
	Regs  []int  // register indices the mark covers
}

// Mark kinds emitted by the ABFT instrumentation.
const (
	// MarkABFTChecksum: the registers in Regs have just been checksummed;
	// they must not be written before the matching barrier mark.
	MarkABFTChecksum = "abft-checksum"
	// MarkABFTBarrier: the checksum over the matching checksum mark's
	// registers has been verified.
	MarkABFTBarrier = "abft-barrier"
)

// MarkRecording appends a Mark at the current instruction boundary of the
// active recording; it is a no-op when nothing is being recorded.
func (m *Machine) MarkRecording(kind string, regs ...int) {
	if m.rec == nil {
		return
	}
	m.rec.Marks = append(m.rec.Marks, Mark{Index: len(m.rec.Instrs), Kind: kind, Regs: regs})
}

// StartRecording begins capturing executed instructions into a new Program.
// Recording stops at StopRecording. Nested recordings are not supported.
func (m *Machine) StartRecording(name string) {
	if m.rec != nil {
		panic("bvm: recording already in progress")
	}
	m.rec = &Program{Name: name}
}

// StopRecording ends capture and returns the recorded program.
func (m *Machine) StopRecording() *Program {
	if m.rec == nil {
		panic("bvm: no recording in progress")
	}
	p := m.rec
	m.rec = nil
	return p
}

// Replay executes the program on machine m (which may differ from the
// recording machine but must have the same topology).
func (p *Program) Replay(m *Machine) {
	for _, in := range p.Instrs {
		m.Exec(in)
	}
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// ttName gives symbolic names to the common truth tables; anything else is
// shown as a hex table over the minterm order F<<2|D<<1|B.
func ttName(tt uint8) string {
	switch tt {
	case TTZero:
		return "0"
	case TTOne:
		return "1"
	case TTF:
		return "F"
	case TTD:
		return "D"
	case TTB:
		return "B"
	case TTAndFD:
		return "F&D"
	case TTOrFD:
		return "F|D"
	case TTXorFD:
		return "F^D"
	case TTAndNotFD:
		return "F&~D"
	case TTNotF:
		return "~F"
	case TTNotD:
		return "~D"
	case TTMuxB:
		return "B?D:F"
	case TTParity:
		return "F^D^B"
	case TTMajority:
		return "maj(F,D,B)"
	}
	return fmt.Sprintf("tt:%02x", tt)
}

// String renders one instruction in the paper's syntax.
func (in Instr) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s, B = %s, %s (%s, %s, B)",
		in.Dst, ttName(in.FTT), ttName(in.GTT), in.F, in.D)
	if in.Cond != nil {
		kw := "IF"
		if in.Cond.Negate {
			kw = "NF"
		}
		pos := append([]int(nil), in.Cond.Positions...)
		sort.Ints(pos)
		parts := make([]string, len(pos))
		for i, p := range pos {
			parts[i] = fmt.Sprintf("%d", p)
		}
		fmt.Fprintf(&sb, " %s {%s}", kw, strings.Join(parts, ","))
	}
	sb.WriteByte(';')
	return sb.String()
}

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s — %d instructions\n", p.Name, len(p.Instrs))
	for i, in := range p.Instrs {
		fmt.Fprintf(&sb, "%4d  %s\n", i, in)
	}
	return sb.String()
}

// RouteProfile summarizes a program's communication structure: instruction
// counts per D-operand route.
func (p *Program) RouteProfile() map[Route]int {
	prof := make(map[Route]int)
	for _, in := range p.Instrs {
		prof[in.D.Via]++
	}
	return prof
}

// ProfileString renders the route profile compactly, local first.
func (p *Program) ProfileString() string {
	prof := p.RouteProfile()
	order := []Route{Local, RouteS, RouteP, RouteL, RouteXS, RouteXP, RouteI}
	var parts []string
	for _, r := range order {
		if n := prof[r]; n > 0 {
			name := strings.TrimPrefix(r.String(), ".")
			if r == Local {
				name = "local"
			}
			parts = append(parts, fmt.Sprintf("%s:%d", name, n))
		}
	}
	return strings.Join(parts, " ")
}
