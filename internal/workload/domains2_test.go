package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestLaboratoryAnalysisStructure(t *testing.T) {
	p := LaboratoryAnalysis(4, 8)
	checkValidAdequate(t, "laboratory", p)
	panels, instruments, confirms := 0, 0, 0
	for _, a := range p.Actions {
		switch {
		case strings.HasPrefix(a.Name, "reagent-panel"):
			panels++
			if a.Cost > 3 {
				t.Errorf("panel %s too expensive: %d", a.Name, a.Cost)
			}
		case strings.HasPrefix(a.Name, "instrument-run"):
			instruments++
			if a.Cost < 12 {
				t.Errorf("instrument %s too cheap: %d", a.Name, a.Cost)
			}
		case strings.HasPrefix(a.Name, "confirm"):
			confirms++
			if !a.Treatment || a.Set.Size() != 1 {
				t.Errorf("confirm %s malformed", a.Name)
			}
		}
	}
	if panels < 3 || confirms != 8 {
		t.Fatalf("structure: %d panels, %d instruments, %d confirms", panels, instruments, confirms)
	}
}

// TestLaboratoryAnalysisShapeInvariants pins the generator's documented shape
// across many seeds: reagent-panel sets are pairwise distinct (the old
// SetOf(i%k) fallback could collide), and every instance with k >= 2 has at
// least one instrument run (the old loop could continue its way to zero).
func TestLaboratoryAnalysisShapeInvariants(t *testing.T) {
	for k := 2; k <= 10; k++ {
		for seed := int64(0); seed < 40; seed++ {
			p := LaboratoryAnalysis(seed, k)
			if err := p.Validate(); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			panelSets := make(map[core.Set]string)
			instruments := 0
			for _, a := range p.Actions {
				switch {
				case strings.HasPrefix(a.Name, "reagent-panel"):
					if prev, dup := panelSets[a.Set]; dup {
						t.Fatalf("k=%d seed=%d: panels %s and %s share set %b",
							k, seed, prev, a.Name, a.Set)
					}
					panelSets[a.Set] = a.Name
				case strings.HasPrefix(a.Name, "instrument-run"):
					instruments++
				}
			}
			if instruments < 1 {
				t.Fatalf("k=%d seed=%d: no instrument runs", k, seed)
			}
		}
	}
}

func TestLogisticsStructure(t *testing.T) {
	p := Logistics(5, 9, 3)
	checkValidAdequate(t, "logistics", p)
	var unit *core.Action
	assemblies := 0
	for i := range p.Actions {
		a := &p.Actions[i]
		if a.Name == "replace-unit" {
			unit = a
		}
		if strings.HasPrefix(a.Name, "swap-assembly") {
			assemblies++
		}
	}
	if unit == nil || unit.Set != core.Universe(9) {
		t.Fatal("no whole-unit replacement")
	}
	if assemblies != 3 {
		t.Fatalf("assemblies = %d, want 3", assemblies)
	}
	// Echelon cost ordering: components cheaper than assemblies cheaper than
	// the unit swap.
	for _, a := range p.Actions {
		if strings.HasPrefix(a.Name, "swap-component") && a.Cost >= unit.Cost {
			t.Errorf("component swap %s costs %d >= unit %d", a.Name, a.Cost, unit.Cost)
		}
	}
	// Degenerate assembly size is clamped.
	q := Logistics(5, 4, 0)
	checkValidAdequate(t, "logistics-clamped", q)
}

func TestNewDomainsSolveOptimallyVsGreedy(t *testing.T) {
	for name, p := range map[string]*core.Problem{
		"lab":       LaboratoryAnalysis(9, 7),
		"logistics": Logistics(10, 8, 4),
	} {
		sol := checkValidAdequate(t, name, p)
		g, err := core.GreedyCost(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g < sol.Cost {
			t.Fatalf("%s: greedy %d beat optimum %d", name, g, sol.Cost)
		}
	}
}
