package hypercube

import "fmt"

// This file implements the SIMD data-movement kernels of Nassimi and Sahni,
// the paper's reference [9] for broadcasting on SIMD machines: ranking the
// flagged PEs, concentrating their records into a contiguous prefix, and
// distributing a prefix back out to flagged PEs. They complement the
// broadcast/propagation routines of dataflow.go and are the standard tool
// chest for processor allocation on hypercube-style machines.

// RankFlagged returns, for every PE, the number of flagged PEs with a
// strictly smaller address, and the total number of flagged PEs. One ASCEND
// pass: after processing dimension t, each PE knows the flagged count of its
// dims<=t subcube and its rank within it; a PE whose bit t is set gains its
// sibling subcube's entire count.
func RankFlagged(dim int, flags []bool) (ranks []int, total int) {
	n := 1 << dim
	if len(flags) != n {
		panic(fmt.Sprintf("hypercube: flags length %d != 2^%d", len(flags), dim))
	}
	type st struct{ count, rank int }
	m := New[st](dim)
	state := m.State()
	for i, f := range flags {
		if f {
			state[i] = st{count: 1}
		}
	}
	m.Ascend(func(t, addr int, self, partner st) st {
		if addr&(1<<t) != 0 {
			self.rank += partner.count
		}
		self.count += partner.count
		return self
	})
	ranks = make([]int, n)
	for i, s := range m.State() {
		ranks[i] = s.rank
	}
	return ranks, m.State()[0].count
}

// Concentrate routes the records of flagged PEs to PEs 0..total-1, ordered
// by address (PE with the i-th smallest flagged address ends at PE i). The
// returned occupancy slice marks which destination slots hold records.
// Routing corrects destination bits dimension by dimension; Nassimi-Sahni's
// theorem guarantees no two records ever contend for a slot, which this
// implementation asserts.
func Concentrate[T any](dim int, flags []bool, records []T) (out []T, occupied []bool) {
	n := 1 << dim
	if len(flags) != n || len(records) != n {
		panic(fmt.Sprintf("hypercube: inputs length %d/%d != 2^%d", len(flags), len(records), dim))
	}
	ranks, _ := RankFlagged(dim, flags)
	type slot struct {
		has  bool
		dest int
		rec  T
	}
	cur := make([]slot, n)
	for i := range cur {
		if flags[i] {
			cur[i] = slot{has: true, dest: ranks[i], rec: records[i]}
		}
	}
	for t := 0; t < dim; t++ {
		next := make([]slot, n)
		for x, s := range cur {
			if !s.has {
				continue
			}
			y := x&^(1<<t) | s.dest&(1<<t)
			if next[y].has {
				panic(fmt.Sprintf("hypercube: concentration collision at PE %d, dim %d", y, t))
			}
			next[y] = s
		}
		cur = next
	}
	out = make([]T, n)
	occupied = make([]bool, n)
	for x, s := range cur {
		if !s.has {
			continue
		}
		if s.dest != x {
			panic(fmt.Sprintf("hypercube: record for slot %d stranded at %d", s.dest, x))
		}
		out[x] = s.rec
		occupied[x] = true
	}
	return out, occupied
}

// Distribute is the inverse of Concentrate: records in the contiguous prefix
// PEs 0..total-1 are routed back out to the flagged PEs, in address order
// (the record at PE i goes to the i-th smallest flagged address).
func Distribute[T any](dim int, flags []bool, prefix []T) []T {
	n := 1 << dim
	if len(flags) != n || len(prefix) != n {
		panic(fmt.Sprintf("hypercube: inputs length %d/%d != 2^%d", len(flags), len(prefix), dim))
	}
	ranks, total := RankFlagged(dim, flags)
	type slot struct {
		has  bool
		dest int
		rec  T
	}
	cur := make([]slot, n)
	for x := 0; x < total; x++ {
		cur[x] = slot{has: true, rec: prefix[x]}
	}
	// Destination of the record at prefix slot i is the flagged PE with
	// rank i; PEs know their own rank, so invert locally.
	destOf := make([]int, total)
	for x, f := range flags {
		if f {
			destOf[ranks[x]] = x
		}
	}
	for x := 0; x < total; x++ {
		cur[x].dest = destOf[x]
	}
	// Distribution is concentration run backwards: correct bits high to low.
	for t := dim - 1; t >= 0; t-- {
		next := make([]slot, n)
		for x, s := range cur {
			if !s.has {
				continue
			}
			y := x&^(1<<t) | s.dest&(1<<t)
			if next[y].has {
				panic(fmt.Sprintf("hypercube: distribution collision at PE %d, dim %d", y, t))
			}
			next[y] = s
		}
		cur = next
	}
	out := make([]T, n)
	for x, s := range cur {
		if s.has {
			if s.dest != x {
				panic(fmt.Sprintf("hypercube: record for PE %d stranded at %d", s.dest, x))
			}
			out[x] = s.rec
		}
	}
	return out
}

// Generalize completes the Nassimi-Sahni kernel trio: the record at prefix
// slot i is broadcast to every PE j whose rank-interval it owns — i.e. PE j
// (flagged or not) receives the record of the highest prefix slot i <= the
// number of flagged PEs with address <= j, clamped to the prefix. With
// flags marking interval starts, this implements "each selected PE's value
// fills forward to the next selected PE", the generalization step of
// Nassimi and Sahni's broadcast framework (the paper's reference [9]).
func Generalize[T any](dim int, flags []bool, prefix []T) []T {
	n := 1 << dim
	if len(flags) != n || len(prefix) != n {
		panic(fmt.Sprintf("hypercube: inputs length %d/%d != 2^%d", len(flags), len(prefix), dim))
	}
	ranks, total := RankFlagged(dim, flags)
	out := make([]T, n)
	if total == 0 {
		return out
	}
	// PE j's owner is the flagged PE at or before j; its record sits at
	// prefix slot rank(owner). ranks[j] counts flagged PEs strictly below j,
	// so the owner slot is ranks[j]-1+flag(j), clamped at 0 (PEs before the
	// first flagged PE receive the first record).
	for j := 0; j < n; j++ {
		slot := ranks[j] - 1
		if flags[j] {
			slot++
		}
		if slot < 0 {
			slot = 0
		}
		out[j] = prefix[slot]
	}
	return out
}
