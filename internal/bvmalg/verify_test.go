package bvmalg_test

import (
	"errors"
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmcheck"
)

// TestRecordedProgramsVerifyClean records every §4 building block and checks
// each against the static verifier and linter: no errors, no warnings, and a
// static cost estimate that matches a dynamic replay counter-for-counter.
func TestRecordedProgramsVerifyClean(t *testing.T) {
	const r = 2
	w4 := func(base int) bvmalg.Word { return bvmalg.Word{Base: base, Width: 4} }
	algs := []struct {
		name string
		run  func(m *bvm.Machine)
	}{
		{"cycle-id", func(m *bvm.Machine) { bvmalg.CycleID(m, bvm.R(0)) }},
		{"processor-id", func(m *bvm.Machine) { bvmalg.ProcessorID(m, 0) }},
		{"mark-pe0", func(m *bvm.Machine) { bvmalg.MarkPE0(m, bvm.R(0)) }},
		{"broadcast", func(m *bvm.Machine) {
			bvmalg.ProcessorID(m, 0)
			bvmalg.SetWordConst(m, w4(10), 9)
			bvmalg.MarkPE0(m, bvm.R(20))
			bvmalg.BroadcastWord(m, w4(10), bvm.R(20), 0, w4(14), bvm.R(21), bvm.R(22), 30)
		}},
		{"min-reduce", func(m *bvm.Machine) {
			bvmalg.SetWordConst(m, w4(10), 5)
			bvmalg.MinReduce(m, w4(10), 0, m.Top.AddrBits, w4(14), 30)
		}},
		{"min-reduce-descend", func(m *bvm.Machine) {
			bvmalg.SetWordConst(m, w4(10), 5)
			bvmalg.MinReduceDescend(m, w4(10), 0, m.Top.AddrBits, w4(14), 30)
		}},
		{"sum-reduce", func(m *bvm.Machine) {
			bvmalg.SetWordConst(m, w4(10), 1)
			bvmalg.SumReduce(m, w4(10), 0, m.Top.AddrBits, w4(14), 30)
		}},
		{"mul-sat", func(m *bvm.Machine) {
			bvmalg.SetWordConst(m, w4(10), 3)
			bvmalg.SetWordConst(m, w4(14), 5)
			bvmalg.MulSatWord(m, w4(18), w4(10), w4(14), 30)
		}},
	}
	cfg, err := bvmcheck.DefaultConfig(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range algs {
		t.Run(alg.name, func(t *testing.T) {
			m, err := bvm.New(r, bvm.DefaultRegisters)
			if err != nil {
				t.Fatal(err)
			}
			m.StartRecording(alg.name)
			alg.run(m)
			p := m.StopRecording()
			if p.Len() == 0 {
				t.Fatal("recording is empty")
			}

			if err := bvmcheck.Verify(p, cfg); err != nil {
				t.Errorf("Verify: %v", err)
			}
			rep := bvmcheck.Lint(p, cfg)
			if n := len(rep.Errors()); n != 0 {
				t.Errorf("%d lint errors:\n%s", n, rep)
			}
			if n := len(rep.Warnings()); n != 0 {
				t.Errorf("%d lint warnings:\n%s", n, rep)
			}

			// Static cost must agree with a dynamic replay exactly.
			fresh, err := bvm.New(r, bvm.DefaultRegisters)
			if err != nil {
				t.Fatal(err)
			}
			p.Replay(fresh)
			if err := bvmcheck.EstimateCost(p, cfg).CheckAgainst(fresh); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSweepStructureOfReductions checks that the linter recovers the expected
// ASCEND / DESCEND shape from the recorded reductions.
func TestSweepStructureOfReductions(t *testing.T) {
	const r = 2
	cfg, err := bvmcheck.DefaultConfig(r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := bvm.New(r, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	val := bvmalg.Word{Base: 10, Width: 4}
	sh := bvmalg.Word{Base: 14, Width: 4}
	m.StartRecording("reduce-shapes")
	bvmalg.SetWordConst(m, val, 5)
	bvmalg.MinReduce(m, val, 0, m.Top.AddrBits, sh, 30)
	bvmalg.MinReduceDescend(m, val, 0, m.Top.AddrBits, sh, 30)
	p := m.StopRecording()

	rep := bvmcheck.Lint(p, cfg)
	if len(rep.Sweeps) != 2 {
		t.Fatalf("sweeps = %+v, want one ascend + one descend", rep.Sweeps)
	}
	// The ascend covers dims 0..5. The descend starts on dim 5, but that
	// exchange is statically indistinguishable from a repeat of the ascend's
	// last one, so the analyzer coalesces it into the first run and the
	// descend run proper covers 4..0.
	dims := cfg.Top.AddrBits
	asc, desc := rep.Sweeps[0], rep.Sweeps[1]
	if asc.Direction != 1 || len(asc.Dims) != dims || asc.Dims[0] != 0 {
		t.Errorf("ascend sweep = %+v, want dims 0..%d", asc, dims-1)
	}
	if desc.Direction != -1 || len(desc.Dims) != dims-1 || desc.Dims[0] != dims-2 {
		t.Errorf("descend sweep = %+v, want dims %d..0", desc, dims-2)
	}
}

// TestVerifyCatchesOversizedRecording demonstrates the geometry check: a
// program recorded for a large machine fails verification against a smaller
// one because its activation positions exceed the smaller cycle length.
func TestVerifyCatchesOversizedRecording(t *testing.T) {
	m, err := bvm.New(3, bvm.DefaultRegisters) // Q = 8
	if err != nil {
		t.Fatal(err)
	}
	m.StartRecording("processor-id-r3")
	bvmalg.ProcessorID(m, 0) // stores position bits under IF sets up to Q-1 = 7
	p := m.StopRecording()

	big, err := bvmcheck.DefaultConfig(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := bvmcheck.Verify(p, big); err != nil {
		t.Fatalf("native geometry: %v", err)
	}
	small, err := bvmcheck.DefaultConfig(2) // Q = 4
	if err != nil {
		t.Fatal(err)
	}
	err = bvmcheck.Verify(p, small)
	if err == nil {
		t.Fatal("r=3 recording verified against an r=2 machine")
	}
	var ve *bvmcheck.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error type %T", err)
	}
	found := false
	for _, d := range ve.Diags {
		if d.Category == bvmcheck.CatBadActivation {
			found = true
		}
	}
	if !found {
		t.Errorf("diags lack %s: %v", bvmcheck.CatBadActivation, ve.Diags)
	}
}
