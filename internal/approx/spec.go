package approx

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/certify"
)

// Spec is the parsed form of the user-facing approx knob (ttserve's
// per-request approx= query parameter, ttsolve's -approx flag):
//
//	off          — exact answers only; oversized instances are rejected
//	<ratio>      — e.g. "1.5": anytime-solve until the certified gap
//	               reaches the ratio (1 demands proven optimality)
//	<duration>   — e.g. "250ms": spend the duration improving, then
//	               return the best incumbent with its certified gap
type Spec struct {
	Raw         string
	Enabled     bool
	Deadline    time.Duration // deadline mode: improvement budget
	TargetMilli uint64        // ratio mode: stop at this certified gap
}

// maxTargetRatio caps ratio-mode targets; a gap demand beyond 1000× is a
// typo, not a quality bar.
const maxTargetRatio = 1000.0

// ParseSpec parses the knob. "" and "off" disable; a number ≥ 1 selects
// ratio mode; a positive Go duration selects deadline mode.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return Spec{Raw: "off"}, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(f) || f < 1 || f > maxTargetRatio {
			return Spec{}, fmt.Errorf("approx ratio must be in [1, %g], got %q", maxTargetRatio, s)
		}
		return Spec{Raw: s, Enabled: true, TargetMilli: uint64(math.Round(f * certify.GapScale))}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return Spec{}, fmt.Errorf("approx deadline must be positive, got %q", s)
		}
		return Spec{Raw: s, Enabled: true, Deadline: d}, nil
	}
	return Spec{}, fmt.Errorf("approx must be \"off\", a ratio ≥ 1, or a duration, got %q", s)
}
