package checkpoint

import (
	"context"
	"errors"
	"math/bits"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func testProblem() *core.Problem {
	return &core.Problem{
		K:       4,
		Weights: []uint64{8, 4, 2, 1},
		Actions: []core.Action{
			{Name: "t01", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "r0", Set: core.SetOf(0), Cost: 3, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 3, Treatment: true},
			{Name: "all", Set: core.Universe(4), Cost: 9, Treatment: true},
		},
	}
}

// solveTo runs the checkpointed sequential solve and captures the frontier
// written at the requested level.
func solveTo(t *testing.T, p *core.Problem, w *Writer) *core.Solution {
	t.Helper()
	sol, err := core.SolveCheckpointedCtx(context.Background(), p, nil, w)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestWriterRoundTrip(t *testing.T) {
	p := testProblem()
	hash, err := ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := NewWriter(nil, dir, p, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := solveTo(t, p, w)
	if w.Levels() != p.K-1 {
		t.Fatalf("wrote %d levels, want %d", w.Levels(), p.K-1)
	}
	snap, err := Load(nil, w.Path())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine != "seq" || snap.Hash != hash || snap.Level != p.K-1 {
		t.Fatalf("snapshot meta: %+v", snap)
	}
	if snap.Problem.K != p.K || len(snap.Problem.Actions) != len(p.Actions) {
		t.Fatalf("embedded problem shape: %+v", snap.Problem)
	}
	// Resume from the stored frontier: bit-identical final solution.
	got, err := core.SolveCheckpointedCtx(context.Background(), snap.Problem, snap.Frontier, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("resumed cost %d, want %d", got.Cost, want.Cost)
	}
	for s := range want.C {
		if got.C[s] != want.C[s] || got.Choice[s] != want.Choice[s] {
			t.Fatalf("resumed table mismatch at subset %d", s)
		}
	}
	// No temp residue after a clean run; Discard removes the file.
	if _, err := os.Stat(w.Path() + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
	if err := w.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(w.Path()); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Discard left the checkpoint file")
	}
	if err := w.Discard(); err != nil {
		t.Fatalf("second Discard not idempotent: %v", err)
	}
}

func TestCostOnlyFrontier(t *testing.T) {
	p := testProblem()
	hash, _ := ProblemHash(p)
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	costOnly := &core.Solution{C: sol.C} // bvm-style: no argmins
	data, err := Encode(p, hash, "bvm", 9, 2, costOnly)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Frontier.HasChoice() {
		t.Fatal("cost-only encode produced choices")
	}
	if snap.Width != 9 || snap.Engine != "bvm" {
		t.Fatalf("meta: %+v", snap)
	}
}

// TestDecodeRejectsDamage flips, truncates, and rewrites a valid image in
// every section and requires Decode to fail with ErrCorrupt — never panic,
// never return a snapshot.
func TestDecodeRejectsDamage(t *testing.T) {
	p := testProblem()
	hash, _ := ProblemHash(p)
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(p, hash, "seq", 0, 3, sol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	check := func(name string, img []byte) {
		t.Helper()
		snap, err := Decode(img)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v (snap %v), want ErrCorrupt", name, err, snap)
		}
	}
	// Truncation at every prefix boundary of interest (torn writes).
	for _, n := range []int{0, 3, 7, 12, len(data) / 2, len(data) - 1} {
		check("truncate", data[:n])
	}
	// Single-bit rot in every region: magic, version, meta, payload, CRC.
	for _, off := range []int{0, 5, 16, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		check("bitflip", bad)
	}
	// Trailing garbage.
	check("trailing", append(append([]byte(nil), data...), 0xEE))
	// Hash that does not match the embedded problem.
	mismatch, err := Encode(p, "00deadbeef", "seq", 0, 3, sol)
	if err != nil {
		t.Fatal(err)
	}
	check("hash-mismatch", mismatch)
}

func TestScan(t *testing.T) {
	p := testProblem()
	hash, _ := ProblemHash(p)
	dir := t.TempDir()
	w, err := NewWriter(nil, dir, p, hash, "parallel", 0)
	if err != nil {
		t.Fatal(err)
	}
	solveTo(t, p, w)
	// Plant a corrupt checkpoint, a stray temp file, and an unrelated file.
	if err := os.WriteFile(filepath.Join(dir, "bad.ckpt"), []byte("TTCKnope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.ckpt.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	snaps, discard, err := Scan(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Hash != hash || snaps[0].Engine != "parallel" {
		t.Fatalf("snaps: %+v", snaps)
	}
	if len(discard) != 2 {
		t.Fatalf("discard: %v", discard)
	}
	// A missing directory is an empty scan.
	snaps, discard, err = Scan(nil, filepath.Join(dir, "absent"))
	if err != nil || snaps != nil || discard != nil {
		t.Fatalf("missing dir: %v %v %v", snaps, discard, err)
	}
}

func TestFrontierPacking(t *testing.T) {
	if n := frontierCount(4, 0); n != 1 {
		t.Fatalf("frontierCount(4,0) = %d", n)
	}
	if n := frontierCount(4, 4); n != 16 {
		t.Fatalf("frontierCount(4,4) = %d", n)
	}
	seen := map[int]bool{}
	forEachFrontierSubset(5, 3, func(s int) {
		if seen[s] {
			t.Fatalf("subset %d visited twice", s)
		}
		seen[s] = true
	})
	if len(seen) != frontierCount(5, 3) {
		t.Fatalf("visited %d subsets, want %d", len(seen), frontierCount(5, 3))
	}
}

// TestDecodeRejectsTamperedFrontier is the certify-on-resume contract: a
// checkpoint whose framing is pristine — every CRC recomputed over the
// tampered payload — but whose frontier disagrees with the DP recurrence must
// be quarantined, exactly like a torn write. This is the file a machine with
// silently corrupting hardware would produce.
func TestDecodeRejectsTamperedFrontier(t *testing.T) {
	p := testProblem()
	hash, _ := ProblemHash(p)
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a frontier cell inside level 3 with a finite cost to perturb.
	var target int
	for s := 1; s < 1<<uint(p.K); s++ {
		if bits.OnesCount(uint(s)) <= 3 && sol.C[s] > 0 && sol.C[s] < core.Inf {
			target = s
			break
		}
	}
	if target == 0 {
		t.Fatal("no finite frontier cell to tamper with")
	}

	encode := func(mutate func(*core.Solution)) []byte {
		t.Helper()
		bad := &core.Solution{
			C:      append([]uint64(nil), sol.C...),
			Choice: append([]int32(nil), sol.Choice...),
		}
		mutate(bad)
		data, err := Encode(p, hash, "seq", 0, 3, bad)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	check := func(name string, img []byte) {
		t.Helper()
		snap, err := Decode(img)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v (snap %v), want ErrCorrupt", name, err, snap)
		}
	}

	check("cost-off-by-one", encode(func(b *core.Solution) { b.C[target]++ }))
	check("cost-zeroed", encode(func(b *core.Solution) { b.C[target] = 0 }))
	check("cost-inf", encode(func(b *core.Solution) { b.C[target] = core.Inf }))
	// A wrong argmin with the right cost is still a lie: resuming from it
	// would rebuild a wrong procedure tree.
	check("choice-swapped", encode(func(b *core.Solution) {
		b.Choice[target] = (b.Choice[target] + 1) % int32(len(p.Actions))
	}))

	// Sanity: the untampered image still decodes.
	good, err := Encode(p, hash, "seq", 0, 3, sol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}
