package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleSolve walks the API end to end: define a problem, solve it, and
// extract the optimal procedure.
func ExampleSolve() {
	problem := &core.Problem{
		K:       2,
		Weights: []uint64{3, 1}, // object 0 is three times as likely
		Actions: []core.Action{
			{Name: "probe", Set: core.SetOf(0), Cost: 1},
			{Name: "fix-0", Set: core.SetOf(0), Cost: 4, Treatment: true},
			{Name: "fix-1", Set: core.SetOf(1), Cost: 4, Treatment: true},
		},
	}
	sol, err := core.Solve(problem)
	if err != nil {
		panic(err)
	}
	fmt.Println("minimum expected cost:", sol.Cost)

	tree, _ := sol.Tree(problem)
	check, _ := core.TreeCost(problem, tree)
	fmt.Println("tree evaluates to:", check)
	// Output:
	// minimum expected cost: 20
	// tree evaluates to: 20
}

// ExampleSet shows the bitmask set type.
func ExampleSet() {
	s := core.SetOf(0, 2, 3)
	fmt.Println(s, "size", s.Size(), "has 1:", s.Has(1))
	fmt.Println("universe of 4:", core.Universe(4))
	// Output:
	// {0,2,3} size 3 has 1: false
	// universe of 4: {0,1,2,3}
}

// ExampleGreedyCost compares the heuristic with the optimum.
func ExampleGreedyCost() {
	problem := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "both", Set: core.SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "only-0", Set: core.SetOf(0), Cost: 1, Treatment: true},
		},
	}
	opt, _ := core.Solve(problem)
	greedy, _ := core.GreedyCost(problem)
	fmt.Println("optimal:", opt.Cost, "greedy:", greedy)
	// Output:
	// optimal: 5 greedy: 5
}
