package cccsim

import (
	"fmt"

	"repro/internal/hypercube"
)

// BitonicSort sorts values (length must equal the CCC machine size) on the
// cube-connected-cycles simulator — Batcher's sorter expressed as DESCEND
// passes, running unchanged on the 3-link machine. It returns the sorted
// slice and the CCC step count.
func BitonicSort(r int, values []uint64) ([]uint64, int, error) {
	sim, err := New[uint64](r)
	if err != nil {
		return nil, 0, err
	}
	if len(values) != sim.Top.N {
		return nil, 0, fmt.Errorf("cccsim: %d values for a %d-PE CCC", len(values), sim.Top.N)
	}
	copy(sim.State(), values)
	for s := 0; s < sim.Dim; s++ {
		sim.DescendRange(0, s+1, hypercube.BitonicOp(s))
	}
	out := make([]uint64, len(values))
	copy(out, sim.State())
	return out, sim.Steps(), nil
}
