// Package repro reproduces "Finding Test-and-Treatment Procedures Using
// Parallel Computation" (Duval, Wagner, Han, Loveland — Duke University,
// 1985/ICPP 1986) as a complete Go system.
//
// The test-and-treatment (TT) problem generalizes binary testing: a universe
// of weighted objects, one of which is faulty; tests that split the
// candidate set; treatments that cure the objects they cover; and the goal
// of a minimum-expected-cost decision procedure. The paper solves the
// NP-hard problem by dynamic programming, transforms the DP into the
// ASCEND/DESCEND scheme, and realizes it on the Boolean Vector Machine —
// a bit-serial SIMD computer of up to 2^20 processing elements wired as a
// cube-connected-cycles network with only 3p/2 links — achieving speedup
// O(p / log p).
//
// The packages, bottom up:
//
//   - internal/bitvec     — packed bit vectors (the BVM's register storage)
//   - internal/ccc        — cube-connected-cycles topology and link census
//   - internal/hypercube  — hypercube SIMD machine; ASCEND/DESCEND drivers;
//     broadcast and the two propagation kinds
//   - internal/cccsim     — pipelined simulation of hypercube ASCEND/DESCEND
//     on the CCC (the paper's slowdown-4-to-6 result)
//   - internal/bvm        — the Boolean Vector Machine instruction simulator
//   - internal/bvmalg     — cycle-ID, processor-ID, bit-serial arithmetic,
//     partner fetch, and instruction-level dataflow algorithms
//   - internal/core       — the TT problem, sequential DP, tree extraction,
//     exhaustive and greedy baselines
//   - internal/parttsolve — the parallel TT algorithm (word level, three
//     engines: lockstep, goroutine-per-PE, CCC)
//   - internal/bvmtt      — the TT algorithm compiled to BVM instructions
//   - internal/workload   — seeded generators for the paper's application
//     domains
//   - internal/simulate   — transcript execution of procedures against
//     concrete faults; Monte-Carlo cost validation
//   - internal/instio     — the JSON instance wire format
//   - internal/experiments — the figure/claim reproduction harness
//
// Binaries: cmd/ttsolve (solve JSON instances; trees, policies, pricing
// tables, Monte-Carlo validation), cmd/bvmrun (BVM demos, disassembly,
// tracing), cmd/ttbench (regenerate every experiment), cmd/ttgen (instance
// generation). Runnable walkthroughs live in examples/; docs/TUTORIAL.md
// and docs/PAPER-NOTES.md are the guided tours. The benchmark suite in
// bench_test.go has one benchmark per experiment row; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured-vs-paper results.
package repro
