package policy

import (
	"testing"
)

// benchFixture publishes one artifact into a store and precomputes, for
// every node, the outcome a router would report there when chasing the
// deepest path — so the benchmark loop walks real sessions end to end and
// wraps around, with no per-iteration setup.
type benchFixture struct {
	st   *Store
	kr   *Keyring
	art  *Artifact
	outs []bool // outcome to report at each node index
}

func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	st := NewStore(0)
	art, err := st.Publish(compiled(b, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	f := &benchFixture{st: st, kr: newTestKeyring(7), art: art, outs: make([]bool, len(art.Nodes))}
	for i, n := range art.Nodes {
		// Prefer the branch that keeps the session alive (deeper walk);
		// fall back to the terminating positive outcome.
		switch {
		case n.Neg >= 0:
			f.outs[i] = false
		case n.Pos >= 0:
			f.outs[i] = true
		default:
			f.outs[i] = true // treatment with full cover: positive ends it
		}
	}
	return f
}

// step performs one complete route-plane step exactly as the serve handler
// does on its hot path: verify the cursor MAC, resolve the artifact by key
// (lock-free store lookup), advance one node, and sign the next cursor.
// Returns the next cursor, or the restarted session when the walk ended.
func (f *benchFixture) step(cur string) string {
	c, err := f.kr.Verify(cur)
	if err != nil {
		panic(err)
	}
	art, ok := f.st.ByKey(c.Artifact)
	if !ok {
		panic("artifact missing")
	}
	next, ok := art.Step(c.Node, f.outs[c.Node])
	if !ok {
		panic("bad node")
	}
	if next < 0 {
		return f.kr.Sign(Cursor{Artifact: c.Artifact, Node: art.Root, Session: c.Session + 1})
	}
	return f.kr.Sign(Cursor{Artifact: c.Artifact, Node: next, Session: c.Session, Step: c.Step + 1})
}

// BenchmarkRouteStep measures one full stateless routing step — cursor
// verify, artifact resolve, node transition, cursor re-sign. The route
// plane's acceptance target is a sub-microsecond mean here.
func BenchmarkRouteStep(b *testing.B) {
	f := newBenchFixture(b)
	cur := f.kr.Sign(Cursor{Artifact: f.art.Key(), Node: f.art.Root})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur = f.step(cur)
	}
}

// BenchmarkRouteBatch steps a batch of 1024 concurrent sessions once each
// per iteration, the amortized shape of /v1/route/batch; per-session cost
// is ns/op ÷ 1024.
func BenchmarkRouteBatch(b *testing.B) {
	const sessions = 1024
	f := newBenchFixture(b)
	curs := make([]string, sessions)
	for i := range curs {
		curs[i] = f.kr.Sign(Cursor{Artifact: f.art.Key(), Node: f.art.Root, Session: uint32(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range curs {
			curs[j] = f.step(curs[j])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/sessions, "ns/step")
}
