package bvmalg_test

import (
	"fmt"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
)

// ExampleCycleID generates the paper's cycle-ID pattern on the 8-PE machine.
func ExampleCycleID() {
	m, err := bvm.New(1, bvm.DefaultRegisters)
	if err != nil {
		panic(err)
	}
	bvmalg.CycleID(m, bvm.R(0))
	fmt.Printf("cost: %d instructions\n", m.InstrCount)
	v := m.Peek(bvm.R(0))
	fmt.Println("pattern:", v.String())
	// Output:
	// cost: 8 instructions
	// pattern: 00100111
}

// ExampleMinReduce runs the ASCEND minimization over a 64-PE machine at the
// instruction level: every PE ends with the global minimum.
func ExampleMinReduce() {
	m, err := bvm.New(2, bvm.DefaultRegisters)
	if err != nil {
		panic(err)
	}
	val := bvmalg.Word{Base: 0, Width: 8}
	shadow := bvmalg.Word{Base: 8, Width: 8}
	for pe := 0; pe < m.N(); pe++ {
		m.SetUint(val.Base, val.Width, pe, uint64(100+(pe*37)%91))
	}
	m.SetUint(val.Base, val.Width, 42, 7) // the global minimum
	bvmalg.MinReduce(m, val, 0, m.Top.AddrBits, shadow, 40)
	fmt.Println("PE 0 holds:", m.Uint(val.Base, val.Width, 0))
	fmt.Println("PE 63 holds:", m.Uint(val.Base, val.Width, 63))
	// Output:
	// PE 0 holds: 7
	// PE 63 holds: 7
}

// ExampleAddSatWord adds two per-PE numbers bit-serially with saturation.
func ExampleAddSatWord() {
	m, err := bvm.New(1, bvm.DefaultRegisters)
	if err != nil {
		panic(err)
	}
	x := bvmalg.Word{Base: 0, Width: 4}
	y := bvmalg.Word{Base: 4, Width: 4}
	sum := bvmalg.Word{Base: 8, Width: 4}
	m.SetUint(x.Base, 4, 0, 5)
	m.SetUint(y.Base, 4, 0, 6)
	m.SetUint(x.Base, 4, 1, 12)
	m.SetUint(y.Base, 4, 1, 9) // would overflow: saturates to 15
	bvmalg.AddSatWord(m, sum, x, y)
	fmt.Println(m.Uint(sum.Base, 4, 0), m.Uint(sum.Base, 4, 1))
	// Output:
	// 11 15
}
