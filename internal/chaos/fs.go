package chaos

import (
	"io/fs"
	"sync"
	"syscall"
	"time"

	"repro/internal/checkpoint"
)

// FaultFS is a checkpoint.FS that forwards to Inner until a configured call
// index, then injects disk failures: ENOSPC (optionally leaving a torn
// prefix of the file behind, as a real short write does) and failed renames.
// Once a fault point is reached the operation keeps failing — a full disk
// stays full — so tests also exercise repeated-failure paths.
type FaultFS struct {
	Inner checkpoint.FS // nil means the real filesystem (checkpoint.OS)

	// FailWriteAt makes WriteFile calls numbered >= it (1-based) fail; 0
	// disables. WriteErr overrides the default ENOSPC. TornBytes > 0 writes
	// that prefix through to Inner before failing, leaving torn residue.
	FailWriteAt int
	WriteErr    error
	TornBytes   int

	// FailRenameAt makes Rename calls numbered >= it (1-based) fail; 0
	// disables. RenameErr overrides the default ENOSPC.
	FailRenameAt int
	RenameErr    error

	// ReadDelay pauses every ReadFile — a slow or degraded disk. The
	// startup-recovery tests use it to prove a huge or sick checkpoint
	// directory cannot stall ttserve boot past its recovery budget.
	ReadDelay time.Duration

	mu      sync.Mutex
	writes  int
	renames int
}

func (f *FaultFS) inner() checkpoint.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return checkpoint.OS{}
}

// Writes reports how many WriteFile calls have been attempted.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// WriteFile implements checkpoint.FS.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	f.writes++
	fail := f.FailWriteAt > 0 && f.writes >= f.FailWriteAt
	f.mu.Unlock()
	if !fail {
		return f.inner().WriteFile(name, data)
	}
	if n := min(f.TornBytes, len(data)); n > 0 {
		_ = f.inner().WriteFile(name, data[:n])
	}
	err := f.WriteErr
	if err == nil {
		err = syscall.ENOSPC
	}
	return &fs.PathError{Op: "write", Path: name, Err: err}
}

// Rename implements checkpoint.FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	f.renames++
	fail := f.FailRenameAt > 0 && f.renames >= f.FailRenameAt
	f.mu.Unlock()
	if !fail {
		return f.inner().Rename(oldname, newname)
	}
	err := f.RenameErr
	if err == nil {
		err = syscall.ENOSPC
	}
	return &fs.PathError{Op: "rename", Path: newname, Err: err}
}

// ReadFile implements checkpoint.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.ReadDelay > 0 {
		time.Sleep(f.ReadDelay)
	}
	return f.inner().ReadFile(name)
}

// ReadDir implements checkpoint.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner().ReadDir(dir) }

// Remove implements checkpoint.FS.
func (f *FaultFS) Remove(name string) error { return f.inner().Remove(name) }

// MkdirAll implements checkpoint.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner().MkdirAll(dir) }
