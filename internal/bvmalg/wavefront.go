package bvmalg

import (
	"fmt"

	"repro/internal/bvm"
)

// This file implements the pipelined reduction over ALL hypercube dimensions
// at the instruction level — ablation A2 on the real machine. Instead of a
// full ring turn per high dimension (FetchPartner's schedule, Θ(Q) per
// dimension, Θ(Q²) total), a single wavefront turn of 2Q-1 steps serves
// every high dimension at once: all data rotates forward in lockstep, and
// the PEs at position u combine laterally exactly when the resident datum is
// inside its combining window (the schedule of internal/cccsim, here emitted
// as BVM instructions with host-computed IF sets — the control bits are free
// because the window depends only on position and step, not on data).
//
// The combine must be commutative and associative (minimum here), since the
// wavefront applies dimensions to different data in different orders.

// MinReduceAllWavefront reduces val by minimum over ALL machine dimensions
// (every PE ends with the global minimum), using the pipelined wavefront for
// the high dimensions. scratch supplies Width registers. Instruction count
// is Θ(Q·Width) for the high phase versus Θ(Q²·Width) for the naive
// per-dimension schedule (see TestWavefrontInstructionAdvantage).
func MinReduceAllWavefront(m *bvm.Machine, val Word, shadow Word, scratchBase int) {
	Q, r := m.Top.Q, m.Top.R
	// Low dimensions via the standard per-dimension fetch (they are cheap:
	// 2^t-step rotations).
	for t := 0; t < r; t++ {
		FetchPartner(m, t, WordPairs(val, shadow), scratchBase)
		MinWord(m, val, val, shadow)
	}
	// High dimensions: one pipelined turn. tmp rides the rotation; val stays
	// home-positioned? No — the combining PE must hold the datum itself, so
	// val itself rotates and returns home after 2Q rotations.
	tmp := Word{Base: scratchBase, Width: val.Width}
	total := 2*Q - 1
	for step := 1; step <= total; step++ {
		// Rotate every datum one position forward.
		MovWordVia(m, val, val, bvm.RouteP)
		// Positions whose resident datum is inside its window combine with
		// the lateral partner. Window (from cccsim): datum with home
		// p = (u - step) mod Q is active iff Q - p <= step <= 2Q - 1 - p.
		active := make([]int, 0, Q)
		for u := 0; u < Q; u++ {
			p := ((u-step)%Q + Q) % Q
			if Q-p <= step && step <= 2*Q-1-p {
				active = append(active, u)
			}
		}
		if len(active) == 0 {
			continue
		}
		cond := bvm.IF(active...)
		// tmp = partner's val (lateral read), then conditional min.
		MovWordVia(m, tmp, val, bvm.RouteL, cond)
		LessWord(m, tmp, val) // B = tmp < val (computed everywhere; applied under cond)
		for b := 0; b < val.Width; b++ {
			m.MuxB(val.Bit(b), val.Bit(b), bvm.Loc(tmp.Bit(b)), cond)
		}
	}
	// 2Q-1 rotations leave every datum one position short of home.
	MovWordVia(m, val, val, bvm.RouteP)
	if total+1 != 2*Q {
		panic(fmt.Sprintf("bvmalg: wavefront step accounting broken: %d", total))
	}
}
