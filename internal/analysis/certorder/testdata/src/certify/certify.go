// Package certify is a miniature stand-in for the repo's answer certifier:
// certorder matches it by package name, so this fake exercises exactly the
// code paths the real one does.
package certify

// Mode selects how much certification runs.
type Mode int

// Modes, mirroring the real package.
const (
	ModeOff Mode = iota
	ModeFast
	ModeAudit
)

// Report is a certification verdict.
type Report struct{ ok bool }

// OK reports whether the answer passed.
func (r Report) OK() bool { return r.ok }

// Check certifies a solve cost.
func Check(cost uint64) Report { return Report{ok: cost < 1<<40} }

// VerifyEntry certifies a cache entry payload.
func VerifyEntry(cost uint64, hash string) Report { return Report{ok: hash != ""} }

// ParseMode parses a mode name; it is not a certifying call.
func ParseMode(s string) Mode {
	if s == "off" {
		return ModeOff
	}
	return ModeFast
}
