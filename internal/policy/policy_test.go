package policy

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
)

// testProblem is a small adequate instance with real structure: two tests
// that split the universe and a treatment per object plus one broad
// treatment, so the optimal tree mixes tests and treatments.
func testProblem(t testing.TB) *core.Problem {
	t.Helper()
	p := &core.Problem{
		K:       4,
		Weights: []uint64{5, 3, 2, 1},
		Actions: []core.Action{
			{Name: "tA", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "tB", Set: core.SetOf(0, 2), Cost: 3},
			{Name: "r0", Set: core.SetOf(0), Cost: 4, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 4, Treatment: true},
			{Name: "r2", Set: core.SetOf(2), Cost: 4, Treatment: true},
			{Name: "r3", Set: core.SetOf(3), Cost: 4, Treatment: true},
			{Name: "rAll", Set: core.SetOf(0, 1, 2, 3), Cost: 20, Treatment: true},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("test problem invalid: %v", err)
	}
	return p
}

func certified(t testing.TB, p *core.Problem) *certify.Certificate {
	t.Helper()
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	cert, err := certify.Certify(p, tree, sol.Cost)
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	return cert
}

func compiled(t testing.TB, id string) *Artifact {
	t.Helper()
	p := testProblem(t)
	art, err := Compile(certified(t, p), id)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

func TestCompileGate(t *testing.T) {
	if _, err := Compile(nil, "x"); err == nil {
		t.Fatal("Compile accepted a nil certificate")
	}
	p := testProblem(t)
	if _, err := Compile(certified(t, p), ""); err == nil {
		t.Fatal("Compile accepted an empty policy id")
	}
}

// walk drives one session for object j through the artifact, returning the
// total cost paid and the last action applied before termination.
func walk(t *testing.T, art *Artifact, j int) (cost uint64, last Action) {
	t.Helper()
	node := art.Root
	for steps := 0; ; steps++ {
		if steps > len(art.Nodes) {
			t.Fatalf("object %d: walk exceeded node count — cycle?", j)
		}
		act, ok := art.ActionAt(node)
		if !ok {
			t.Fatalf("object %d: bad node %d", j, node)
		}
		cost += act.Cost
		positive := act.Set.Has(j)
		next, ok := art.Step(node, positive)
		if !ok {
			t.Fatalf("object %d: step failed at node %d", j, node)
		}
		if positive && act.Treatment {
			if next != Done {
				t.Fatalf("object %d: successful treatment did not end the procedure", j)
			}
			return cost, act
		}
		if next == None {
			t.Fatalf("object %d: walked into an impossible branch at node %d", j, node)
		}
		if next == Done {
			t.Fatalf("object %d: procedure ended without treating it", j)
		}
		node = next
	}
}

func TestRouteAllObjectsReachCorrectLeaf(t *testing.T) {
	p := testProblem(t)
	cert := certified(t, p)
	art, err := Compile(cert, "test-policy")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var expected uint64
	for j := 0; j < p.K; j++ {
		cost, last := walk(t, art, j)
		if !last.Treatment || !last.Set.Has(j) {
			t.Fatalf("object %d terminated on %q which does not treat it", j, last.Name)
		}
		expected += cost * p.Weights[j]
	}
	if expected != art.Cost {
		t.Fatalf("routed expected cost %d != certified optimum %d", expected, art.Cost)
	}
}

func TestStepBounds(t *testing.T) {
	art := compiled(t, "bounds")
	for _, bad := range []int32{-1, -2, int32(len(art.Nodes)), 1 << 30} {
		if _, ok := art.Step(bad, true); ok {
			t.Fatalf("Step accepted out-of-range node %d", bad)
		}
		if _, ok := art.ActionAt(bad); ok {
			t.Fatalf("ActionAt accepted out-of-range node %d", bad)
		}
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	st := NewStore(0)
	art, err := st.Publish(compiled(t, "round-trip"))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.ID != art.ID || got.Version != art.Version || got.Cost != art.Cost || got.K != art.K {
		t.Fatalf("round trip changed identity: %+v vs %+v", got, art)
	}
	if got.Key() != art.Key() {
		t.Fatalf("round trip changed key: %#x vs %#x", got.Key(), art.Key())
	}
	if len(got.Nodes) != len(art.Nodes) || got.Root != art.Root {
		t.Fatalf("round trip changed shape")
	}
	for i := range got.Nodes {
		if got.Nodes[i] != art.Nodes[i] {
			t.Fatalf("node %d changed: %+v vs %+v", i, got.Nodes[i], art.Nodes[i])
		}
	}
	for i := range got.Actions {
		if got.Actions[i] != art.Actions[i] {
			t.Fatalf("action %d changed", i)
		}
	}
}

func TestUnsealedArtifactDoesNotSerialize(t *testing.T) {
	art := compiled(t, "unsealed")
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo accepted an unpublished (unsealed) artifact")
	}
}

// TestTamperRejected flips every byte of the serialized artifact in turn
// and demands Read reject each mutant: header damage trips the frame
// checks, payload damage trips the CRC, and a hypothetical consistent
// rewrite would still have to pass seal verification and re-certification.
func TestTamperRejected(t *testing.T) {
	st := NewStore(0)
	art, err := st.Publish(compiled(t, "tamper"))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	orig := buf.Bytes()
	if _, err := Read(bytes.NewReader(orig)); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
	mutant := make([]byte, len(orig))
	for i := range orig {
		copy(mutant, orig)
		mutant[i] ^= 0x40
		if _, err := Read(bytes.NewReader(mutant)); err == nil {
			t.Fatalf("byte %d: flipped artifact loaded cleanly", i)
		}
	}
	for _, cut := range []int{0, 1, len(orig) / 2, len(orig) - 1} {
		if _, err := Read(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation at %d loaded cleanly", cut)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	kr, err := NewKeyring()
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	want := Cursor{Artifact: 0xdeadbeefcafe0123, Node: 7, Session: 42, Step: 3}
	s := kr.Sign(want)
	if len(s) != CursorLen {
		t.Fatalf("cursor length %d, want %d", len(s), CursorLen)
	}
	got, err := kr.Verify(s)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got != want {
		t.Fatalf("cursor round trip: got %+v want %+v", got, want)
	}
}

func TestCursorTamperRejected(t *testing.T) {
	kr := newTestKeyring(1)
	s := kr.Sign(Cursor{Artifact: 99, Node: 1, Session: 2, Step: 3})
	for i := range s {
		for _, repl := range []byte{'A', 'z', '0', '_'} {
			if s[i] == repl {
				continue
			}
			mut := s[:i] + string(repl) + s[i+1:]
			if _, err := kr.Verify(mut); err == nil {
				t.Fatalf("altered cursor at %d accepted", i)
			}
		}
	}
	if _, err := kr.Verify(s[:len(s)-1]); err == nil {
		t.Fatal("truncated cursor accepted")
	}
	if _, err := kr.Verify(""); err == nil {
		t.Fatal("empty cursor accepted")
	}
	other := newTestKeyring(2)
	if _, err := other.Verify(s); err == nil {
		t.Fatal("cursor signed by another keyring accepted")
	}
}

func TestStoreVersioning(t *testing.T) {
	st := NewStore(0)
	a1, err := st.Publish(compiled(t, "pol"))
	if err != nil {
		t.Fatalf("publish 1: %v", err)
	}
	a2, err := st.Publish(compiled(t, "pol"))
	if err != nil {
		t.Fatalf("publish 2: %v", err)
	}
	if a1.Version != 1 || a2.Version != 2 {
		t.Fatalf("versions %d,%d want 1,2", a1.Version, a2.Version)
	}
	if a1.Key() == a2.Key() {
		t.Fatal("distinct versions share a key")
	}
	if got, ok := st.Get("pol", 0); !ok || got != a2 {
		t.Fatal("Get latest did not return v2")
	}
	if got, ok := st.Get("pol", 1); !ok || got != a1 {
		t.Fatal("Get v1 failed")
	}
	if _, ok := st.Get("pol", 3); ok {
		t.Fatal("Get nonexistent version succeeded")
	}
	if _, ok := st.Get("missing", 0); ok {
		t.Fatal("Get unknown id succeeded")
	}
	for _, a := range []*Artifact{a1, a2} {
		if got, ok := st.ByKey(a.Key()); !ok || got != a {
			t.Fatalf("ByKey(%#x) failed", a.Key())
		}
	}
	infos := st.List()
	if len(infos) != 2 || infos[0].Version != 1 || infos[1].Version != 2 {
		t.Fatalf("List: %+v", infos)
	}
	if n, b := st.Stats(); n != 2 || b != a1.Bytes()+a2.Bytes() {
		t.Fatalf("Stats: %d artifacts %d bytes", n, b)
	}
}

// sealedBytes probes the sealed size of this package's test artifact for a
// one-character id (size is only set at publish, and the id is embedded).
func sealedBytes(t *testing.T) int64 {
	t.Helper()
	probe := NewStore(0)
	a, err := probe.Publish(compiled(t, "p"))
	if err != nil {
		t.Fatal(err)
	}
	return a.Bytes()
}

func TestStoreLRUEviction(t *testing.T) {
	one := sealedBytes(t)         // all 1-char-id test artifacts are the same size
	st := NewStore(2*one + one/2) // room for two
	a1, err := st.Publish(compiled(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := st.Publish(compiled(t, "b"))
	if err != nil {
		t.Fatal(err)
	}
	// Touch a1 so b1 is the LRU victim when c arrives.
	if _, ok := st.ByKey(a1.Key()); !ok {
		t.Fatal("a1 lookup failed")
	}
	c1, err := st.Publish(compiled(t, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.ByKey(b1.Key()); ok {
		t.Fatal("LRU artifact b1 survived eviction")
	}
	if _, ok := st.Get("b", 0); ok {
		t.Fatal("evicted id still resolvable")
	}
	for _, a := range []*Artifact{a1, c1} {
		if _, ok := st.ByKey(a.Key()); !ok {
			t.Fatalf("recently used artifact %q evicted", a.ID)
		}
	}
	if n, bytes := st.Stats(); n != 2 || bytes > st.budget {
		t.Fatalf("Stats after eviction: %d artifacts, %d bytes (budget %d)", n, bytes, st.budget)
	}
	// An artifact alone over budget is refused outright.
	tiny := NewStore(16)
	if _, err := tiny.Publish(compiled(t, "huge")); err == nil {
		t.Fatal("oversized artifact accepted")
	}
}

// TestStoreConcurrentAccess hammers lock-free reads against publishes and
// evictions; run under -race this is the store's memory-model test.
func TestStoreConcurrentAccess(t *testing.T) {
	one := sealedBytes(t)
	st := NewStore(4 * one) // tight budget so eviction churns
	ids := []string{"w", "x", "y", "z", "q", "r"}
	// Pre-compile on the test goroutine (helpers may t.Fatal); each publish
	// consumes a fresh artifact since Publish seals in place.
	batches := make([][]*Artifact, len(ids))
	for i, id := range ids {
		for j := 0; j < 20; j++ {
			batches[i] = append(batches[i], compiled(t, id))
		}
	}
	var pubs, readers sync.WaitGroup
	stop := make(chan struct{})
	for i, id := range ids {
		pubs.Add(1)
		go func(id string, arts []*Artifact) {
			defer pubs.Done()
			for _, art := range arts {
				if _, err := st.Publish(art); err != nil {
					t.Errorf("publish %s: %v", id, err)
					return
				}
			}
		}(id, batches[i])
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					if art, ok := st.Get(id, 0); ok {
						// ByKey may miss if an eviction raced in — legal.
						st.ByKey(art.Key())
					}
				}
				st.List()
				st.Stats()
			}
		}()
	}
	pubs.Wait()
	close(stop)
	readers.Wait()
	if n, b := st.Stats(); n == 0 || b > 4*one {
		t.Fatalf("final store state: %d artifacts %d bytes (budget %d)", n, b, 4*one)
	}
}
