// Package sarif encodes analysis results as SARIF 2.1.0, the interchange
// format CI systems (GitHub code scanning among them) ingest to annotate PR
// diffs. It covers the subset of the schema both ttlint and `bvmrun lint`
// need: one run, a rule per analyzer/category, and physical locations with
// line/column regions.
package sarif

import (
	"encoding/json"
	"io"
)

const (
	version   = "2.1.0"
	schemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

// Levels rank results, per the SARIF reportingLevel vocabulary.
const (
	LevelNone    = "none"
	LevelNote    = "note"
	LevelWarning = "warning"
	LevelError   = "error"
)

// Log is a complete SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []*Run `json:"runs"`
}

// Run is one tool invocation's results.
type Run struct {
	Tool    tool     `json:"tool"`
	Results []Result `json:"results"`

	rules map[string]int // ruleId -> index in Tool.Driver.Rules
}

type tool struct {
	Driver driver `json:"driver"`
}

type driver struct {
	Name           string `json:"name"`
	Version        string `json:"version,omitempty"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule describes one analyzer or diagnostic category.
type Rule struct {
	ID   string `json:"id"`
	Desc *struct {
		Text string `json:"text"`
	} `json:"shortDescription,omitempty"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	RuleIndex int        `json:"ruleIndex"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations,omitempty"`
}

// Message carries the human-readable finding text.
type Message struct {
	Text string `json:"text"`
}

// Location is a physical artifact position.
type Location struct {
	Physical PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation names an artifact and an optional region within it.
type PhysicalLocation struct {
	Artifact ArtifactLocation `json:"artifactLocation"`
	Region   *Region          `json:"region,omitempty"`
}

// ArtifactLocation is the file (or program) the finding is in.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is a start position within the artifact.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// NewLog builds a document with a single run for the named tool.
func NewLog(toolName, toolVersion, infoURI string) (*Log, *Run) {
	run := &Run{
		Tool:    tool{Driver: driver{Name: toolName, Version: toolVersion, InformationURI: infoURI, Rules: []Rule{}}},
		Results: []Result{},
		rules:   map[string]int{},
	}
	return &Log{Schema: schemaURI, Version: version, Runs: []*Run{run}}, run
}

// AddRule registers (or finds) a rule and returns its index.
func (r *Run) AddRule(id, shortDesc string) int {
	if i, ok := r.rules[id]; ok {
		return i
	}
	rule := Rule{ID: id}
	if shortDesc != "" {
		rule.Desc = &struct {
			Text string `json:"text"`
		}{Text: shortDesc}
	}
	r.rules[id] = len(r.Tool.Driver.Rules)
	r.Tool.Driver.Rules = append(r.Tool.Driver.Rules, rule)
	return r.rules[id]
}

// AddResult appends one finding. line <= 0 omits the region (program-level
// findings such as bvmcheck's unpaired-mark diagnostics).
func (r *Run) AddResult(ruleID, level, message, uri string, line, col int) {
	res := Result{
		RuleID:    ruleID,
		RuleIndex: r.AddRule(ruleID, ""),
		Level:     level,
		Message:   Message{Text: message},
	}
	if uri != "" {
		loc := Location{Physical: PhysicalLocation{Artifact: ArtifactLocation{URI: uri}}}
		if line > 0 {
			loc.Physical.Region = &Region{StartLine: line, StartColumn: col}
		}
		res.Locations = []Location{loc}
	}
	r.Results = append(r.Results, res)
}

// Encode writes the document as indented JSON.
func (l *Log) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
