package core

import (
	"context"
	"fmt"
	"math/bits"
)

// This file holds the comparison solvers: an exhaustive enumerator that
// proves optimality on tiny instances, and a greedy heuristic of the kind
// the binary-testing literature (the paper's refs [1][2][6][7][11]) uses
// when the exponential DP is out of reach. The experiment harness (E14)
// quantifies the optimality gap of the greedy on the synthetic workloads.

// SolveExhaustive computes C(U) by plain recursion with no memoization:
// every subtree choice is re-enumerated, which is exactly a minimum over
// all successful procedure trees. Exponential; intended for K <= 4 as an
// independent oracle for Solve.
func SolveExhaustive(p *Problem) (uint64, error) {
	return SolveExhaustiveCtx(context.Background(), p)
}

// SolveExhaustiveCtx is SolveExhaustive with cancellation: the context is
// polled every ctxStride recursive evaluations — the enumeration is the most
// explosive solver in the package, so it above all must stay cancellable.
func SolveExhaustiveCtx(ctx context.Context, p *Problem) (uint64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.K > 8 {
		return 0, fmt.Errorf("core: exhaustive solver limited to K <= 8, got %d", p.K)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	psum := make([]uint64, 1<<uint(p.K))
	for s := 1; s < len(psum); s++ {
		low := s & -s
		psum[s] = satAdd(psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	var evals int
	var ctxErr error
	var rec func(s Set) uint64
	rec = func(s Set) uint64 {
		if s == 0 {
			return 0
		}
		evals++
		if evals&(ctxStride-1) == 0 && ctxErr == nil {
			ctxErr = ctx.Err()
		}
		if ctxErr != nil {
			return Inf // unwind; the result is discarded
		}
		best := Inf
		for _, a := range p.Actions {
			inter := s & a.Set
			diff := s &^ a.Set
			if inter == 0 || (!a.Treatment && diff == 0) {
				continue
			}
			cost := satMul(a.Cost, psum[s])
			if a.Treatment {
				cost = satAdd(cost, rec(diff))
			} else {
				cost = satAdd(cost, satAdd(rec(inter), rec(diff)))
			}
			if cost < best {
				best = cost
			}
		}
		return best
	}
	got := rec(Universe(p.K))
	if ctxErr != nil {
		return 0, ctxErr
	}
	return got, nil
}

// GreedyTree builds a valid (generally sub-optimal) procedure tree with a
// one-step cost-effectiveness rule: at candidate set S, every applicable
// action is scored by expected cost paid now per unit of progress —
//
//	treatment: t_i·p(S) / p(S∩T_i)        (weight resolved outright)
//	test:      t_i·p(S) / min(p(S∩T_i), p(S−T_i))
//
// (a balanced cheap test scores well; an expensive or lopsided one badly),
// and the lowest score is applied. Zero-progress denominators disqualify an
// action. Returns an error when no applicable action exists at some
// reachable set, which on a validated instance means inadequacy.
//
// Subset masses are computed on demand (memoized, O(|S|) a miss) rather
// than from a precomputed 2^K table: the greedy visits O(K·N) sets, and
// it is the fallback of choice exactly when 2^K state is unaffordable —
// the bounded-suboptimality plane (internal/approx) runs it at every K the
// Set type can express.
func GreedyTree(p *Problem) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	masses := make(map[Set]uint64, 4*p.K*len(p.Actions))
	psum := func(s Set) uint64 {
		if s == 0 {
			return 0
		}
		if v, ok := masses[s]; ok {
			return v
		}
		var t uint64
		for rest := uint32(s); rest != 0; rest &= rest - 1 {
			t = satAdd(t, p.Weights[bits.TrailingZeros32(rest)])
		}
		masses[s] = t
		return t
	}
	var build func(s Set) (*Node, error)
	build = func(s Set) (*Node, error) {
		if s == 0 {
			return nil, nil
		}
		bestIdx := -1
		var bestNum, bestDen uint64 // compare num/den as cross products
		for i, a := range p.Actions {
			inter := s & a.Set
			diff := s &^ a.Set
			if inter == 0 || (!a.Treatment && diff == 0) {
				continue
			}
			num := satMul(a.Cost, psum(s))
			var den uint64
			if a.Treatment {
				den = psum(inter)
			} else {
				den = min(psum(inter), psum(diff))
			}
			if den == 0 {
				continue // splits only zero-weight mass: no progress
			}
			if bestIdx < 0 || satMul(num, bestDen) < satMul(bestNum, den) {
				bestIdx, bestNum, bestDen = i, num, den
			}
		}
		if bestIdx < 0 {
			// Zero-weight candidates may remain; any treatment intersecting S
			// still discharges them. Retry accepting zero-progress treatments.
			for i, a := range p.Actions {
				if a.Treatment && s&a.Set != 0 {
					bestIdx = i
					break
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("core: greedy stuck at set %v (inadequate instance?)", s)
		}
		a := p.Actions[bestIdx]
		n := &Node{Action: bestIdx, Set: s}
		var err error
		if !a.Treatment {
			if n.Pos, err = build(s & a.Set); err != nil {
				return nil, err
			}
		}
		if n.Neg, err = build(s &^ a.Set); err != nil {
			return nil, err
		}
		return n, nil
	}
	return build(Universe(p.K))
}

// GreedyCost is GreedyTree followed by TreeCost.
func GreedyCost(p *Problem) (uint64, error) {
	tree, err := GreedyTree(p)
	if err != nil {
		return 0, err
	}
	return TreeCost(p, tree)
}

// BinaryTesting builds the TT encoding of a classical binary testing
// instance (the problem the paper generalizes): given tests and per-object
// weights, identifying the faulty object is modeled by giving every object a
// singleton treatment of uniform cost treatCost. With treatCost large
// relative to test costs, the optimal procedure isolates objects by testing
// before treating, recovering the classical optimal testing strategy.
func BinaryTesting(weights []uint64, tests []Action, treatCost uint64) *Problem {
	k := len(weights)
	p := &Problem{K: k, Weights: append([]uint64(nil), weights...)}
	p.Actions = append(p.Actions, tests...)
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, Action{
			Name:      fmt.Sprintf("treat-%d", j),
			Set:       SetOf(j),
			Cost:      treatCost,
			Treatment: true,
		})
	}
	return p
}
