// Seeded true positives and near-miss negatives for the flushcheck analyzer.
package flush

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"os"
	"text/tabwriter"
)

// True positive: the buffer is never flushed at all; everything shorter than
// one bufio block is lost on return.
func truncates() {
	w := bufio.NewWriter(os.Stdout) // want "never Flushed"
	fmt.Fprintln(w, "hello")
}

// True positive: flushed, but the error goes nowhere — the /dev/full bug.
func drops() {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "hello")
	w.Flush() // want "Flush error is dropped"
}

// True positive: an explicit blank assignment is still a drop.
func blankAssign() {
	w := bufio.NewWriter(os.Stdout)
	_ = w.Flush() // want "Flush error is dropped"
}

// True positive: a deferred call discards its value by construction.
func deferredDrop() {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush() // want "Flush error is dropped"
	fmt.Fprintln(w, "hello")
}

// True positive: gzip writers finish with Close, and its error carries the
// final flushed block.
func gzipDrop() {
	zw := gzip.NewWriter(os.Stdout)
	fmt.Fprintln(zw, "hello")
	zw.Close() // want "Close error is dropped"
}

// True positive: tabwriter buffers everything until Flush.
func tabDrop() {
	tw := tabwriter.NewWriter(os.Stdout, 0, 8, 1, ' ', 0)
	fmt.Fprintln(tw, "a\tb")
	tw.Flush() // want "Flush error is dropped"
}

// Negative: returning the flush error is the canonical shape.
func returned() error {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "x")
	return w.Flush()
}

// Negative: checked in an if-init.
func ifChecked() {
	w := bufio.NewWriter(os.Stdout)
	if err := w.Flush(); err != nil {
		panic(err)
	}
}

// Near-miss negative: the flush lives in a deferred closure and lands in the
// named return — exactly how the repo's CLIs surface it.
func deferClosure() (err error) {
	w := bufio.NewWriter(os.Stdout)
	defer func() {
		if ferr := w.Flush(); err == nil && ferr != nil {
			err = ferr
		}
	}()
	fmt.Fprintln(w, "x")
	return nil
}

// Near-miss negative: one mid-stream flush is unchecked but the final one is
// checked; the function still observes failure before returning.
func midStream() error {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "part 1")
	w.Flush()
	fmt.Fprintln(w, "part 2")
	return w.Flush()
}

// Near-miss negative: the writer escapes by return; the caller owns it.
func escapesByReturn() *bufio.Writer {
	return bufio.NewWriter(os.Stdout)
}

func escapesVar() *bufio.Writer {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "header")
	return w
}

// Near-miss negative: stored into a struct; lifecycle is the holder's.
type holder struct{ w *bufio.Writer }

func escapesByField(h *holder) {
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	h.w = w
}

// Negative: passing the writer as an io.Writer argument is not an escape —
// consumers write, the creator still flushes (and checks).
func passedDownstream() error {
	w := bufio.NewWriter(os.Stdout)
	emit(w)
	return w.Flush()
}

func emit(w *bufio.Writer) { fmt.Fprintln(w, "emitted") }
