package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/workload"
)

func batchJSON(t *testing.T, ps []*core.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := instio.WriteBatch(&buf, ps, ""); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBatch(t *testing.T, ts *httptest.Server, query string, body []byte) (*BatchResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve/batch"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return &br, resp.StatusCode
}

// sameLatticeVariants returns n instances sharing base's lattice with varied
// costs and weights, plus one structurally different outlier.
func sameLatticeVariants(rng *rand.Rand, base *core.Problem, n int) []*core.Problem {
	out := []*core.Problem{base}
	for g := 1; g < n; g++ {
		q := base.Clone()
		for j := range q.Weights {
			q.Weights[j] = uint64(rng.Intn(30) + 1)
		}
		for i := range q.Actions {
			q.Actions[i].Cost = uint64(rng.Intn(40) + 1)
		}
		out = append(out, q)
	}
	return out
}

// TestBatchSolveMatchesSolo: a batch of re-priced variants returns exactly
// the per-instance answers, reports the grouping, and certifies each answer.
func TestBatchSolveMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := workload.MedicalDiagnosis(5, 10)
	group := sameLatticeVariants(rng, base, 4)
	outlier := workload.BinaryTestingUniform(6, 9)
	batch := append(append([]*core.Problem{}, group...), outlier)

	s, ts := newTestServer(t, Config{})
	br, code := postBatch(t, ts, "?tree=1", batchJSON(t, batch))
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.Instances != len(batch) || len(br.Items) != len(batch) {
		t.Fatalf("batch echoed %d/%d items for %d instances", br.Instances, len(br.Items), len(batch))
	}
	if br.Groups != 2 {
		t.Fatalf("expected 2 lattice groups (variants + outlier), got %d", br.Groups)
	}
	if br.Repriced != len(group)-1 {
		t.Fatalf("repriced = %d, want %d", br.Repriced, len(group)-1)
	}
	if br.Fallbacks != 0 || br.CacheHits != 0 {
		t.Fatalf("unexpected fallbacks=%d cache_hits=%d", br.Fallbacks, br.CacheHits)
	}
	for i, p := range batch {
		it := br.Items[i]
		if it.Error != "" {
			t.Fatalf("instance %d errored: %s", i, it.Error)
		}
		if it.SolvedBy != "batch" {
			t.Fatalf("instance %d solved by %q, want batch", i, it.SolvedBy)
		}
		want, err := core.Solve(Canonicalize(p))
		if err != nil {
			t.Fatal(err)
		}
		if !it.Adequate || it.Cost == nil || *it.Cost != want.Cost {
			t.Fatalf("instance %d: batch cost %v, want %d", i, it.Cost, want.Cost)
		}
		if it.Tree == "" || it.FirstAction == "" {
			t.Fatalf("instance %d: missing tree rendering", i)
		}
	}
	// The group members share a group index; the outlier has its own.
	g0 := br.Items[0].Group
	for i := 1; i < len(group); i++ {
		if br.Items[i].Group != g0 {
			t.Fatalf("variant %d in group %d, want %d", i, br.Items[i].Group, g0)
		}
	}
	if br.Items[len(batch)-1].Group == g0 {
		t.Fatal("outlier landed in the variants' lattice group")
	}
	if got := s.metrics.BatchGroups.Load(); got != 2 {
		t.Fatalf("batch_groups metric = %d, want 2", got)
	}
	if got := s.metrics.BatchRepriced.Load(); got != int64(len(group)-1) {
		t.Fatalf("batch_repriced metric = %d, want %d", got, len(group)-1)
	}
	if pass := s.metrics.CertifyPass.Load(); pass != int64(len(batch)) {
		t.Fatalf("certify_pass = %d, want every batch answer certified (%d)", pass, len(batch))
	}
}

// TestBatchPopulatesSharedCache: batch answers land in the same LRU that
// /v1/solve reads, under the same hash|mode key — and a second batch is pure
// cache hits.
func TestBatchPopulatesSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := workload.MedicalDiagnosis(4, 8)
	batch := sameLatticeVariants(rng, base, 3)
	s, ts := newTestServer(t, Config{})
	if _, code := postBatch(t, ts, "", batchJSON(t, batch)); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if got := s.CacheLen(); got != len(batch) {
		t.Fatalf("cache holds %d entries after batch, want %d", got, len(batch))
	}
	// A permuted single solve of a member must hit the batch's entry.
	sr, code := postSolve(t, ts, "", instanceJSON(t, permuted(rng, batch[1])))
	if code != http.StatusOK {
		t.Fatal("solve after batch failed")
	}
	if !sr.Cached || sr.SolvedBy != "batch" {
		t.Fatalf("follow-up solve cached=%v solved_by=%q, want cache hit on the batch entry", sr.Cached, sr.SolvedBy)
	}
	// Re-batching is all cache hits, no new groups.
	br, _ := postBatch(t, ts, "", batchJSON(t, batch))
	if br.CacheHits != len(batch) || br.Groups != 0 {
		t.Fatalf("re-batch: cache_hits=%d groups=%d, want %d/0", br.CacheHits, br.Groups, len(batch))
	}
	for _, it := range br.Items {
		if !it.Cached || it.Group != -1 {
			t.Fatalf("re-batch item not served from cache: %+v", it)
		}
	}
}

// TestBatchAdmission: oversized batches and oversized members are refused
// before any solving, and empty/garbage bodies are 400s.
func TestBatchAdmission(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, ts := newTestServer(t, Config{MaxBatch: 2, MaxK: 6})
	base := workload.MedicalDiagnosis(3, 6)
	three := sameLatticeVariants(rng, base, 3)
	if _, code := postBatch(t, ts, "", batchJSON(t, three)); code != http.StatusUnprocessableEntity {
		t.Fatalf("3-instance batch against MaxBatch=2: status %v, want 422", code)
	}
	big := []*core.Problem{base, workload.MedicalDiagnosis(8, 8)}
	if _, code := postBatch(t, ts, "", batchJSON(t, big)); code != http.StatusUnprocessableEntity {
		t.Fatalf("over-K member: status %v, want 422", code)
	}
	if _, code := postBatch(t, ts, "", []byte(`{"instances":[]}`)); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %v, want 400", code)
	}
	if _, code := postBatch(t, ts, "", []byte(`{nope`)); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %v, want 400", code)
	}
}

// TestBatchStatsExposed: /v1/stats carries the batch counters and the
// stripe-pool gauge, including a dedicated StripeWorkers pool size.
func TestBatchStatsExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	base := workload.MedicalDiagnosis(4, 7)
	batch := sameLatticeVariants(rng, base, 3)
	s, ts := newTestServer(t, Config{StripeWorkers: 3})
	if _, code := postBatch(t, ts, "", batchJSON(t, batch)); code != http.StatusOK {
		t.Fatal("batch failed")
	}
	stats := s.statsPayload()
	if got := stats["stripe_workers"]; got != 3 {
		t.Fatalf("stripe_workers = %v, want 3", got)
	}
	if got := stats["batch_groups"]; got != int64(1) {
		t.Fatalf("batch_groups = %v, want 1", got)
	}
	if got := stats["batch_repriced"]; got != int64(2) {
		t.Fatalf("batch_repriced = %v, want 2", got)
	}
	if got := stats["batch_requests"]; got != int64(1) {
		t.Fatalf("batch_requests = %v, want 1", got)
	}
}

// TestBatchInadequateMember: an inadequate instance inside a batch is
// reported inadequate (no cost), while its groupmates still answer.
func TestBatchInadequateMember(t *testing.T) {
	adequate := workload.MedicalDiagnosis(4, 7)
	inadequate := &core.Problem{
		K:       3,
		Weights: []uint64{1, 2, 3},
		Actions: []core.Action{
			{Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Set: core.SetOf(0, 1, 2), Cost: 2, Treatment: false},
		},
	}
	_, ts := newTestServer(t, Config{})
	br, code := postBatch(t, ts, "", batchJSON(t, []*core.Problem{adequate, inadequate}))
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if !br.Items[0].Adequate || br.Items[0].Cost == nil {
		t.Fatal("adequate member lost its answer")
	}
	if br.Items[1].Adequate || br.Items[1].Cost != nil || br.Items[1].Error != "" {
		t.Fatalf("inadequate member misreported: %+v", br.Items[1])
	}
}

// TestBatchCertifyModesSeparateSlots: batch entries are keyed by hash|mode
// like single solves — an off-mode batch answer is not served to a fast-mode
// request.
func TestBatchCertifyModesSeparateSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	base := workload.MedicalDiagnosis(4, 6)
	batch := sameLatticeVariants(rng, base, 2)
	s, ts := newTestServer(t, Config{})
	if _, code := postBatch(t, ts, "?certify=off", batchJSON(t, batch)); code != http.StatusOK {
		t.Fatal("off-mode batch failed")
	}
	if got := s.metrics.CertifyPass.Load(); got != 0 {
		t.Fatalf("off-mode batch certified %d answers", got)
	}
	br, _ := postBatch(t, ts, "?certify=audit", batchJSON(t, batch))
	if br.CacheHits != 0 {
		t.Fatal("audit-mode batch served off-mode cache entries")
	}
	if got := s.metrics.CertifyPass.Load(); got != int64(len(batch)) {
		t.Fatalf("audit-mode batch certified %d answers, want %d", got, len(batch))
	}
}
