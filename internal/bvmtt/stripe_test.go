package bvmtt

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/stripe"
)

// TestSolveStripedMatchesScalar pins the full instruction-level TT program
// under striped execution (forced onto the pool with StripeMinWords=1)
// bit-identical to the scalar run: same C plane, same instruction counts,
// with and without the ABFT verify layer at the round barriers.
func TestSolveStripedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := stripe.New(3)
	for trial := 0; trial < 6; trial++ {
		k := rng.Intn(3) + 2
		p := randomProblem(rng, k, rng.Intn(3)+2)
		scalar, err := SolveOpts(context.Background(), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, verify := range []bool{false, true} {
			striped, err := SolveOpts(context.Background(), p, Options{
				Verify:         verify,
				Stripe:         pool,
				StripeMinWords: 1,
			})
			if err != nil {
				t.Fatalf("trial %d verify=%v: %v", trial, verify, err)
			}
			if striped.Cost != scalar.Cost {
				t.Fatalf("trial %d verify=%v: striped C(U)=%d, scalar %d", trial, verify, striped.Cost, scalar.Cost)
			}
			for s := range striped.C {
				if striped.C[s] != scalar.C[s] {
					t.Fatalf("trial %d verify=%v: C[%b] striped %d, scalar %d", trial, verify, s, striped.C[s], scalar.C[s])
				}
			}
			if striped.Instructions != scalar.Instructions {
				t.Fatalf("trial %d verify=%v: instruction count %d != %d", trial, verify, striped.Instructions, scalar.Instructions)
			}
			if striped.Repairs != 0 {
				t.Fatalf("trial %d verify=%v: healthy striped run reported %d repairs", trial, verify, striped.Repairs)
			}
		}
	}
}
