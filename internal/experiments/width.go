package experiments

import (
	"fmt"

	"repro/internal/bvmtt"
	"repro/internal/workload"
)

// WidthScaling is experiment E21: the w in the paper's O(k·w·(k + log N)).
// The BVM is bit-serial, so machine time must scale linearly in the word
// width ("the precision required"); we solve one fixed instance at several
// widths and compare measured instruction counts against a linear fit
// anchored at the two endpoints. Width 12 is the smallest that holds this
// instance's costs without saturating; 18 is the largest whose register
// layout fits the machine's 256 rows.
func WidthScaling() (*Table, error) {
	t := &Table{
		ID:         "E21",
		Title:      "BVM TT instructions vs word width (the paper's precision p)",
		PaperClaim: "time O(k·p·(k + log N)) — linear in the precision (§1)",
		Header:     []string{"width w", "instructions", "linear fit", "deviation %"},
	}
	p := workload.SystematicBiology(3, 3)
	widths := []int{12, 14, 16, 18}
	counts := make([]int64, len(widths))
	var cost uint64
	for i, w := range widths {
		res, err := bvmtt.Solve(p, w)
		if err != nil {
			return nil, err
		}
		counts[i] = res.Instructions
		if i == 0 {
			cost = res.Cost
		} else if res.Cost != cost {
			return nil, fmt.Errorf("experiments: C(U) changed with width (%d vs %d)", res.Cost, cost)
		}
	}
	// Linear model through the first and last sample. The multiply phase is
	// Θ(w²) but small, so a near-linear fit is the expected shape.
	w0, wn := float64(widths[0]), float64(widths[len(widths)-1])
	c0, cn := float64(counts[0]), float64(counts[len(counts)-1])
	slope := (cn - c0) / (wn - w0)
	for i, w := range widths {
		fit := c0 + slope*(float64(w)-w0)
		dev := 100 * (float64(counts[i]) - fit) / fit
		t.AddRow(w, counts[i], fmt.Sprintf("%.0f", fit), fmt.Sprintf("%+.1f", dev))
	}
	t.Notes = append(t.Notes,
		"results are width-invariant (same C(U) at every width); only machine time changes",
		"small negative mid-range deviations come from the Θ(w²) multiply being amortized by the linear anchor")
	return t, nil
}
