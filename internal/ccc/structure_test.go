package ccc

import "testing"

// TestRouteStructure pins the closed-form route structure the word-parallel
// kernels rely on (structure.go) against the Neighbor definitions, for every
// supported geometry.
func TestRouteStructure(t *testing.T) {
	for r := 1; r <= MaxR; r++ {
		top, err := New(r)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < top.N; x++ {
			_, p := top.Split(x)
			base := x - p // block-aligned cycle start
			if got, want := top.Succ(x), base+(p+1)%top.Q; got != want {
				t.Fatalf("r=%d: Succ(%d) = %d, want block rotation %d", r, x, got, want)
			}
			if got, want := top.Pred(x), base+(p+top.Q-1)%top.Q; got != want {
				t.Fatalf("r=%d: Pred(%d) = %d, want block rotation %d", r, x, got, want)
			}
			if got, want := top.XS(x), x^1; got != want {
				t.Fatalf("r=%d: XS(%d) = %d, want %d", r, x, got, want)
			}
			if got, want := top.Lateral(x), x^top.LateralStride(p); got != want {
				t.Fatalf("r=%d: Lateral(%d) = %d, want XOR stride %d", r, x, got, want)
			}
			wantXP := base + (p+1)%top.Q
			if p%2 == 0 {
				wantXP = base + (p+top.Q-1)%top.Q
			}
			if got := top.XP(x); got != wantXP {
				t.Fatalf("r=%d: XP(%d) = %d, want parity-split rotation %d", r, x, got, wantXP)
			}
		}
	}
}

// TestSelectors checks the repeating word selectors against Split.
func TestSelectors(t *testing.T) {
	for r := 1; r <= MaxR; r++ {
		top, err := New(r)
		if err != nil {
			t.Fatal(err)
		}
		odd := top.ParitySelector(true)
		even := top.ParitySelector(false)
		if odd^even != ^uint64(0) {
			t.Fatalf("r=%d: parity selectors do not partition the word", r)
		}
		for p := 0; p < top.Q; p++ {
			sel := top.PosSelector(p)
			for i := 0; i < 64; i++ {
				want := i%top.Q == p
				if got := sel>>uint(i)&1 == 1; got != want {
					t.Fatalf("r=%d: PosSelector(%d) bit %d = %v, want %v", r, p, i, got, want)
				}
			}
		}
	}
}
