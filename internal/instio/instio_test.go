package instio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := workload.MedicalDiagnosis(seed, 6)
		var buf bytes.Buffer
		if err := Write(&buf, p, "round-trip test"); err != nil {
			t.Fatal(err)
		}
		q, err := Read(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("seed %d: round trip changed the instance", seed)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ps := []*core.Problem{
		workload.MedicalDiagnosis(1, 5),
		workload.MedicalDiagnosis(2, 6),
		workload.FaultLocation(3, 4, 2),
	}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, ps, "batch round-trip"); err != nil {
		t.Fatal(err)
	}
	qs, err := ReadBatch(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(ps, qs) {
		t.Fatal("batch round trip changed an instance")
	}
}

func TestBatchReadValidates(t *testing.T) {
	cases := map[string]string{
		"not json":      `instances: 1`,
		"unknown field": `{"bogus": 1, "instances": []}`,
		"no instances":  `{"instances": []}`,
		"bad member": `{"instances": [
			{"weights": [1], "actions": [{"objects": [0], "cost": 1, "treatment": true}]},
			{"weights": [1], "actions": []}]}`,
	}
	for name, in := range cases {
		if _, err := ReadBatch(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A bad member's error names its index so batch clients can fix it.
	bad := `{"instances": [
		{"weights": [1], "actions": [{"objects": [0], "cost": 1, "treatment": true}]},
		{"weights": [1], "actions": []}]}`
	_, err := ReadBatch(strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "instance 1") {
		t.Fatalf("member error does not name its index: %v", err)
	}
}

func TestReadValidates(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"bogus": 1, "weights": [1], "actions": []}`,
		"no actions":    `{"weights": [1], "actions": []}`,
		"object out of range": `{"weights": [1], "actions": [
			{"objects": [3], "cost": 1, "treatment": true}]}`,
		"no treatment": `{"weights": [1, 1], "actions": [
			{"objects": [0], "cost": 1}]}`,
		"not json": `weights: 1`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadGood(t *testing.T) {
	in := `{
	  "comment": "two objects",
	  "weights": [3, 5],
	  "actions": [
	    {"name": "t", "objects": [0, 1], "cost": 2, "treatment": true},
	    {"objects": [0], "cost": 1}
	  ]
	}`
	p, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 2 || p.Weights[1] != 5 || p.Actions[0].Set != core.SetOf(0, 1) {
		t.Fatalf("parsed wrong: %+v", p)
	}
	if p.Actions[1].Name != "" || p.Actions[1].Treatment {
		t.Fatal("defaults wrong")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &core.Problem{K: 0}, ""); err == nil {
		t.Fatal("invalid instance written")
	}
}

func TestWriteIsSolvableByCore(t *testing.T) {
	p := workload.FaultLocation(1, 5, 3)
	var buf bytes.Buffer
	if err := Write(&buf, p, ""); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("costs diverge after round trip: %d vs %d", a.Cost, b.Cost)
	}
}
