// Package checkpoint is a miniature stand-in for the repo's durable
// checkpoint store: the durability analyzer matches it by package name so
// this fake exercises exactly the code paths the real one does.
package checkpoint

import "errors"

// FS abstracts the durable filesystem, mirroring the real package.
type FS interface {
	WriteFile(name string, data []byte) error
	Rename(oldname, newname string) error
}

// Writer persists solver frontiers.
type Writer struct{ dead bool }

// NewWriter opens a checkpoint writer rooted at dir.
func NewWriter(dir string) (*Writer, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty dir")
	}
	return &Writer{}, nil
}

// CheckpointLevel persists one DP frontier.
func (w *Writer) CheckpointLevel(level int) error {
	if w.dead {
		return errors.New("checkpoint: writer wedged")
	}
	return nil
}

// Discard drops the partial checkpoint.
func (w *Writer) Discard() error { return nil }

// Scan lists resumable checkpoints under dir.
func Scan(dir string) ([]string, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty dir")
	}
	return nil, nil
}

// DecodePlane parses a wire-format plane image — codec surface, not
// persistence: its errors signal corruption and must propagate.
func DecodePlane(data []byte) ([]uint64, error) {
	if len(data) == 0 {
		return nil, errors.New("checkpoint: corrupt plane")
	}
	return nil, nil
}

// ProblemHash canonically hashes an instance — codec surface.
func ProblemHash(v any) (string, error) {
	if v == nil {
		return "", errors.New("checkpoint: nil problem")
	}
	return "h", nil
}
