// Faultlocation: machine fault location and correction (another of the
// paper's motivating applications), solved both sequentially and with the
// paper's parallel ASCEND algorithm on the cube-connected-cycles engine —
// demonstrating the step accounting behind the O(p/log p) speedup claim.
//
//	go run ./examples/faultlocation
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

func main() {
	problem := workload.FaultLocation(7, 7, 4) // 7 components, boards of 4
	fmt.Printf("fault-location instance: %d components, %d probes, %d repairs\n",
		problem.K, problem.NumTests(), problem.NumTreatments())

	seq, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential DP: C(U) = %d in %d operations\n", seq.Cost, seq.Ops)

	tree, err := seq.Tree(problem)
	if err != nil {
		log.Fatal(err)
	}
	boardSwaps, partSwaps, probes := 0, 0, 0
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n == nil {
			return
		}
		a := problem.Actions[n.Action]
		switch {
		case !a.Treatment:
			probes++
		case a.Set.Size() > 1:
			boardSwaps++
		default:
			partSwaps++
		}
		walk(n.Pos)
		walk(n.Neg)
	}
	walk(tree)
	fmt.Printf("optimal repair policy uses %d probes, %d part replacements, %d board swaps\n",
		probes, partSwaps, boardSwaps)

	// The same instance on the paper's parallel machine.
	par, err := parttsolve.Solve(problem, parttsolve.CCC)
	if err != nil {
		log.Fatal(err)
	}
	if par.Cost != seq.Cost {
		log.Fatalf("parallel cost %d != sequential %d", par.Cost, seq.Cost)
	}
	fmt.Printf("\nparallel (CCC engine): same C(U) = %d\n", par.Cost)
	fmt.Printf("  machine: %d PEs (one per (S,i) pair), 3·p/2 = %d links\n",
		par.PEs, 3*par.PEs/2)
	fmt.Printf("  hypercube word steps: %d; CCC word steps: %d (slowdown %.1f)\n",
		par.DimSteps, par.CCCSteps, float64(par.CCCSteps)/float64(par.DimSteps))
	pes := float64(par.PEs)
	fmt.Printf("  speedup model: T1/Tp ~ %.0f vs p/log p = %.0f\n",
		float64(seq.Ops)/float64(par.DimSteps), pes/math.Log2(pes))
}
