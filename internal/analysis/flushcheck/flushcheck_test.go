package flushcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/flushcheck"
)

func TestFlushcheck(t *testing.T) {
	analysistest.Run(t, "testdata", flushcheck.Analyzer, "flush")
}
