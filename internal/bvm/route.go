package bvm

import (
	"fmt"

	"repro/internal/bitvec"
)

// Route kernels: every neighbor route of the CCC is a structured permutation
// (see internal/ccc route structure constants), so Exec realizes them as
// word-parallel bitvec kernels instead of per-bit perm-table gathers. The
// perm tables are kept as the differential-test reference: a machine in
// reference mode (SetReferenceExec) runs the original scalar path, and the
// test suite asserts bit-identical state against the kernels for every
// geometry.

// routeD computes into dst the value of src routed via `via` (any route
// except Local and RouteI, which Exec handles inline).
func (m *Machine) routeD(dst, src *bitvec.Vector, via Route) {
	if m.refExec {
		perm, ok := m.perms[via]
		if !ok {
			panic(fmt.Sprintf("bvm: unknown route %v", via))
		}
		dst.Gather(src, perm)
		return
	}
	q := m.Top.Q
	switch via {
	case RouteS:
		dst.RotateWithinBlocks(src, q, 1)
	case RouteP:
		dst.RotateWithinBlocks(src, q, -1)
	case RouteXS:
		dst.StrideSwap(src, 1)
	case RouteXP:
		// Odd positions read their successor, even ones their predecessor.
		dst.RotateWithinBlocksMasked(src, q, 1, m.oddSel)
		dst.RotateWithinBlocksMasked(src, q, -1, ^m.oddSel)
	case RouteL:
		// Per in-cycle position p, the lateral link is the XOR exchange at
		// flat-address stride Q·2^p; the position selectors partition all
		// PEs, so the masked swaps compose into the full permutation.
		for p := 0; p < q; p++ {
			dst.StrideSwapMasked(src, m.Top.LateralStride(p), m.posSel[p])
		}
	default:
		panic(fmt.Sprintf("bvm: unknown route %v", via))
	}
}

// routeI shifts src up the input chain into dst, feeding `in` at PE 0.
func (m *Machine) routeI(dst, src *bitvec.Vector, in bool) {
	if m.refExec {
		dst.Fill(false)
		for x := m.Top.N - 1; x >= 1; x-- {
			dst.Set(x, src.Get(x-1))
		}
		dst.Set(0, in)
		return
	}
	dst.ShiftUp1(src, in)
}

// SetReferenceExec switches the machine onto the scalar reference execution
// path: perm-table Gather routes, per-bit activation mask construction, and
// no fast paths. The kernels must match it bit for bit and counter for
// counter; it exists for differential tests and should not be used for
// performance work.
func (m *Machine) SetReferenceExec(on bool) { m.refExec = on }

// activationMaskInto builds the (IF or NF) <set> mask one bit at a time —
// the reference implementation the cached masks are tested against.
func (m *Machine) activationMaskInto(c *Activation, dst *bitvec.Vector) {
	if c == nil {
		dst.Fill(true)
		return
	}
	inSet := make([]bool, m.Top.Q)
	for _, p := range c.Positions {
		if p < 0 || p >= m.Top.Q {
			panic(fmt.Sprintf("bvm: activation position %d out of range [0,%d)", p, m.Top.Q))
		}
		inSet[p] = true
	}
	for x := 0; x < m.Top.N; x++ {
		_, p := m.Top.Split(x)
		dst.Set(x, inSet[p] != c.Negate)
	}
}

// activationMask returns the machine-wide activation mask for c, serving and
// memoizing composed masks from the per-position masks precomputed at
// construction. The returned vector is shared and must not be mutated.
func (m *Machine) activationMask(c *Activation) *bitvec.Vector {
	if c == nil {
		return m.onesMask
	}
	var key uint32
	var pat uint64
	for _, p := range c.Positions {
		if p < 0 || p >= m.Top.Q {
			panic(fmt.Sprintf("bvm: activation position %d out of range [0,%d)", p, m.Top.Q))
		}
		key |= 1 << uint(p)
		pat |= m.posSel[p]
	}
	if c.Negate {
		key |= 1 << 31
		pat = ^pat
	}
	if v, ok := m.actCache[key]; ok {
		return v
	}
	v := bitvec.New(m.Top.N)
	v.FillWord(pat)
	m.actCache[key] = v
	return v
}
