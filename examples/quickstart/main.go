// Quickstart: define a small test-and-treatment problem, solve it optimally,
// and print the optimal procedure tree (the shape of the paper's Figure 1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Four candidate diseases; exactly one is present. Weights are relative
	// prior likelihoods (they need not be normalized).
	problem := &core.Problem{
		K:       4,
		Weights: []uint64{8, 4, 2, 1}, // flu, strep, mono, rare
		Actions: []core.Action{
			// Tests split the candidate set by their response.
			{Name: "swab", Set: core.SetOf(0, 1), Cost: 1},
			{Name: "blood-panel", Set: core.SetOf(1, 2), Cost: 4},
			// Treatments cure the faulty object when it is in their set, and
			// the procedure continues on the rest when they fail.
			{Name: "rest+fluids", Set: core.SetOf(0), Cost: 5, Treatment: true},
			{Name: "antibiotics", Set: core.SetOf(1, 3), Cost: 9, Treatment: true},
			{Name: "specialist", Set: core.SetOf(0, 1, 2, 3), Cost: 25, Treatment: true},
		},
	}

	sol, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum expected cost: C(U) = %d\n\n", sol.Cost)

	tree, err := sol.Tree(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal test-and-treatment procedure:")
	fmt.Print(tree.Render(problem))

	// TreeCost re-evaluates the tree from scratch — a sanity check that the
	// extracted procedure really achieves the DP's cost.
	check, err := core.TreeCost(problem, tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindependent tree evaluation: %d (matches: %v)\n", check, check == sol.Cost)

	// How much does optimality buy over a sensible greedy?
	greedy, err := core.GreedyCost(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy heuristic cost: %d (%.1f%% above optimal)\n",
		greedy, 100*(float64(greedy)-float64(sol.Cost))/float64(sol.Cost))
}
