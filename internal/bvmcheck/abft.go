package bvmcheck

import (
	"fmt"

	"repro/internal/bvm"
)

// ABFT mark discipline. The bvmtt solver's ABFT layer checksums the frozen
// M/C plane registers at each level barrier: it emits a MarkABFTChecksum over
// the covered registers when the checksum is taken and a MarkABFTBarrier when
// the verification over those registers has run. Between the two marks the
// covered registers must be quiescent — a write inside the window means the
// barrier verifies registers that no longer match the frozen checksum, so the
// verify either fires a false violation or (if the checksum is recomputed
// from the mutated state) silently blesses the mutation. Either way the ABFT
// guarantee is gone. This pass warns when a kernel edit slides a write into
// the window, and when marks are unpaired — the failure modes a refactor of
// the solve loop would introduce.
//
// Pairing rule: a barrier closes the nearest preceding open checksum mark. A
// second checksum mark while one is open supersedes it (the repair path
// re-checksums after a re-run, and only the fresh checksum is the one the
// barrier verifies), restarting the window.

// analyzeABFT scans the program's marks and flags window and pairing
// violations. Assumes the program is well-formed (register indices valid).
func analyzeABFT(p *bvm.Program, cfg Config) []Diag {
	var diags []Diag
	emit := func(i int, sev Severity, format string, args ...any) {
		d := Diag{Index: i, Severity: sev, Category: CatABFTWindow, Message: fmt.Sprintf(format, args...)}
		if i >= 0 && i < p.Len() {
			d.Instr = p.Instrs[i].String()
		}
		diags = append(diags, d)
	}

	var (
		open     bool
		openIdx  int // instruction boundary of the open checksum mark
		covered  map[int]bool
		scanFrom int // next instruction to scan for window writes
	)
	scanWindow := func(until int) {
		for i := scanFrom; i < until && i < p.Len(); i++ {
			dst := p.Instrs[i].Dst
			if dst.Kind == bvm.KindR && covered[dst.Index] {
				emit(i, SevWarning,
					"write to checksummed R[%d] between abft-checksum (boundary %d) and its barrier; the barrier will verify a stale checksum",
					dst.Index, openIdx)
			}
		}
		scanFrom = until
	}
	for _, mk := range p.Marks {
		switch mk.Kind {
		case bvm.MarkABFTChecksum:
			// A fresh checksum while one is open supersedes it (the repair
			// path re-checksums after a re-run); the abandoned window is not
			// scanned — only the fresh checksum reaches a barrier.
			open, openIdx, scanFrom = true, mk.Index, mk.Index
			covered = make(map[int]bool, len(mk.Regs))
			for _, r := range mk.Regs {
				covered[r] = true
			}
		case bvm.MarkABFTBarrier:
			if !open {
				emit(-1, SevWarning,
					"abft-barrier at boundary %d has no preceding abft-checksum mark", mk.Index)
				continue
			}
			scanWindow(mk.Index)
			open = false
		}
	}
	if open {
		emit(-1, SevWarning,
			"abft-checksum at boundary %d is never verified: no matching abft-barrier mark", openIdx)
	}
	return diags
}
