package serve

import (
	"container/list"

	"repro/internal/core"
)

// cacheEntry is one solved instance. It stores the canonical problem and the
// (small, O(K²)-node) optimal procedure tree rather than the 2^K DP vectors,
// so a full cache stays within a few megabytes even at the admission-control
// size limit. Tree is nil when the solving engine reports costs but not
// argmins (the bvm engine) or the instance is inadequate.
type cacheEntry struct {
	hash string
	key  string // cache key: hash plus certify mode ("" means hash) — an
	// uncertified answer must never be served to a request that asked for
	// certification, so entries solved under different modes get distinct slots
	engine   string // engine that originally solved the instance
	cost     uint64 // C(U); core.Inf for inadequate instances
	adequate bool
	canon    *core.Problem // canonicalized instance (action order normalized)
	tree     *core.Node    // optimal procedure over canon's action indices
	bytes    int64         // estimated resident size, for the byte budget

	// Bounded-suboptimality answers (approx.go). Only set when approx is
	// true; such entries live under approx-qualified cache keys, so they
	// are never handed to a request that demanded exactness.
	approx       bool   // answer came from the approx engine: cost is certified ≤ gap·OPT, not exact
	gapMilli     uint64 // certified suboptimality ratio (certify.GapScale = proven optimal)
	lowerBound   uint64 // certified lower bound on the optimum
	approxPolicy string // solver that produced the tree: greedy-ratio, greedy-gain, bb
	approxExact  bool   // branch-and-bound completed: the answer is the proven optimum
}

// entryBytes estimates an entry's resident size: struct and hash overhead,
// the canonical problem (weights plus per-action struct and name), and the
// procedure tree (two child pointers, action index, and allocator overhead
// per node). An estimate is enough — the budget bounds growth, it does not
// audit the allocator.
func entryBytes(e *cacheEntry) int64 {
	n := int64(160) + int64(len(e.hash))
	if e.canon != nil {
		n += int64(8 * len(e.canon.Weights))
		for _, a := range e.canon.Actions {
			n += 40 + int64(len(a.Name))
		}
	}
	if e.tree != nil {
		n += int64(48 * e.tree.CountNodes())
	}
	return n
}

// lruCache is an LRU over solved instances, keyed by cache key (canonical
// hash plus certify mode), bounded
// by entry count and optionally by total estimated bytes. It is not safe for
// concurrent use; the server guards it with its mutex.
type lruCache struct {
	capacity   int
	byteBudget int64 // 0: no byte bound
	totalBytes int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	byHash     map[string]*list.Element
}

func newLRU(capacity int, byteBudget int64) *lruCache {
	return &lruCache{
		capacity:   capacity,
		byteBudget: byteBudget,
		ll:         list.New(),
		byHash:     make(map[string]*list.Element, max(capacity, 0)),
	}
}

// get returns the entry for key and marks it most recently used.
func (c *lruCache) get(key string) *cacheEntry {
	el, ok := c.byHash[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// add inserts (or refreshes) an entry, evicting least recently used entries
// until both the entry capacity and the byte budget hold. An entry larger
// than the whole byte budget is not cached at all.
func (c *lruCache) add(e *cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	if e.key == "" {
		e.key = e.hash
	}
	if e.bytes == 0 {
		e.bytes = entryBytes(e)
	}
	if c.byteBudget > 0 && e.bytes > c.byteBudget {
		return
	}
	if el, ok := c.byHash[e.key]; ok {
		c.totalBytes += e.bytes - el.Value.(*cacheEntry).bytes
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.byHash[e.key] = c.ll.PushFront(e)
		c.totalBytes += e.bytes
	}
	for c.ll.Len() > c.capacity || (c.byteBudget > 0 && c.totalBytes > c.byteBudget) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.byHash, old.key)
		c.totalBytes -= old.bytes
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
