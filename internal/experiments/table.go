// Package experiments regenerates every figure and quantitative claim of the
// paper (the experiment index E1–E14 of DESIGN.md), rendering plain-text
// tables and figures. cmd/ttbench drives it; EXPERIMENTS.md records its
// output against the paper's statements.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a title, the paper's corresponding
// claim, column headers, and rows of cells.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Header     []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(total-2, 4)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
