package panicsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/panicsafe"
)

func TestPanicsafe(t *testing.T) {
	analysistest.Run(t, "testdata", panicsafe.Analyzer, "pool")
}
