package certorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/certorder"
)

func TestCertorder(t *testing.T) {
	analysistest.Run(t, "testdata", certorder.Analyzer, "serveorder")
}
