package cccsim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hypercube"
)

// mixOp is order-sensitive and dimension-dependent, so any deviation from the
// exact ASCEND/DESCEND schedule changes the result.
func mixOp(t, addr int, self, partner uint64) uint64 {
	return self*1000003 + partner*7 + uint64(t)*13 + uint64(addr&7)
}

func minOp(t, addr int, self, partner uint64) uint64 {
	if partner < self {
		return partner
	}
	return self
}

func randomInit(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	init := make([]uint64, n)
	for i := range init {
		init[i] = uint64(rng.Intn(1 << 20))
	}
	return init
}

func hypercubeReference(dim int, init []uint64, lo, hi int, op hypercube.Op[uint64], descending bool) []uint64 {
	m := hypercube.New[uint64](dim)
	copy(m.State(), init)
	if descending {
		m.DescendRange(lo, hi, op)
	} else {
		m.AscendRange(lo, hi, op)
	}
	out := make([]uint64, len(init))
	copy(out, m.State())
	return out
}

func TestAscendMatchesHypercube(t *testing.T) {
	for r := 1; r <= 3; r++ {
		s, err := New[uint64](r)
		if err != nil {
			t.Fatal(err)
		}
		init := randomInit(s.Top.N, int64(r))
		copy(s.State(), init)
		s.Ascend(mixOp)
		want := hypercubeReference(s.Dim, init, 0, s.Dim, mixOp, false)
		if !reflect.DeepEqual(s.State(), want) {
			t.Fatalf("r=%d: CCC ascend differs from hypercube ascend", r)
		}
	}
}

func TestDescendMatchesHypercube(t *testing.T) {
	for r := 1; r <= 3; r++ {
		s, err := New[uint64](r)
		if err != nil {
			t.Fatal(err)
		}
		init := randomInit(s.Top.N, 100+int64(r))
		copy(s.State(), init)
		s.Descend(mixOp)
		want := hypercubeReference(s.Dim, init, 0, s.Dim, mixOp, true)
		if !reflect.DeepEqual(s.State(), want) {
			t.Fatalf("r=%d: CCC descend differs from hypercube descend", r)
		}
	}
}

func TestPartialRangesMatchHypercube(t *testing.T) {
	for r := 1; r <= 3; r++ {
		s, _ := New[uint64](r)
		dim := s.Dim
		ranges := [][2]int{
			{0, s.Top.R},           // low dims only
			{s.Top.R, dim},         // high dims only
			{1, dim - 1},           // mixed, partial
			{dim / 2, dim/2 + 1},   // single dim
			{0, dim},               // everything
			{dim / 3, 2 * dim / 3}, // middle band
		}
		for _, rg := range ranges {
			lo, hi := rg[0], rg[1]
			if lo >= hi {
				continue
			}
			init := randomInit(s.Top.N, int64(r*100+lo*10+hi))

			sa, _ := New[uint64](r)
			copy(sa.State(), init)
			sa.AscendRange(lo, hi, mixOp)
			want := hypercubeReference(dim, init, lo, hi, mixOp, false)
			if !reflect.DeepEqual(sa.State(), want) {
				t.Fatalf("r=%d ascend [%d,%d): mismatch", r, lo, hi)
			}

			sd, _ := New[uint64](r)
			copy(sd.State(), init)
			sd.DescendRange(lo, hi, mixOp)
			wantD := hypercubeReference(dim, init, lo, hi, mixOp, true)
			if !reflect.DeepEqual(sd.State(), wantD) {
				t.Fatalf("r=%d descend [%d,%d): mismatch", r, lo, hi)
			}
		}
	}
}

func TestNaiveAscendMatchesHypercube(t *testing.T) {
	for r := 1; r <= 3; r++ {
		s, _ := New[uint64](r)
		init := randomInit(s.Top.N, 200+int64(r))
		copy(s.State(), init)
		s.NaiveAscend(mixOp)
		want := hypercubeReference(s.Dim, init, 0, s.Dim, mixOp, false)
		if !reflect.DeepEqual(s.State(), want) {
			t.Fatalf("r=%d: naive ascend differs from hypercube ascend", r)
		}
	}
}

// TestSlowdownFactor checks the paper's §3 claim: ASCEND on the CCC costs a
// constant factor of roughly 4-6 over the hypercube's q steps, regardless of
// network size.
func TestSlowdownFactor(t *testing.T) {
	for r := 1; r <= 3; r++ {
		s, _ := New[uint64](r)
		copy(s.State(), randomInit(s.Top.N, 5))
		s.Ascend(minOp)
		slow := float64(s.Steps()) / float64(s.Dim)
		if slow < 2.0 || slow > 6.0 {
			t.Errorf("r=%d: slowdown %.2f (steps=%d, dim=%d) outside [2,6]", r, slow, s.Steps(), s.Dim)
		}
	}
}

// TestWavefrontBeatsNaive validates ablation A2: the pipelined wavefront
// schedule uses O(Q) steps for the high dimensions where the naive
// per-dimension sweep uses O(Q^2).
func TestWavefrontBeatsNaive(t *testing.T) {
	r := 3 // Q = 8
	pipe, _ := New[uint64](r)
	copy(pipe.State(), randomInit(pipe.Top.N, 6))
	pipe.Ascend(minOp)

	naive, _ := New[uint64](r)
	copy(naive.State(), randomInit(naive.Top.N, 6))
	naive.NaiveAscend(minOp)

	if !reflect.DeepEqual(pipe.State(), naive.State()) {
		t.Fatal("pipelined and naive ascend disagree on results")
	}
	if naive.Steps() <= pipe.Steps() {
		t.Fatalf("naive (%d steps) not slower than pipelined (%d steps)", naive.Steps(), pipe.Steps())
	}
	// Naive high phase is Q dims × 2Q steps = 2Q^2; pipelined is ~4Q.
	if ratio := float64(naive.Steps()) / float64(pipe.Steps()); ratio < 2 {
		t.Errorf("naive/pipelined step ratio %.2f, expected >= 2 at Q=8", ratio)
	}
}

func TestStepCountFormula(t *testing.T) {
	// Full ascend: low phase sums 2·2^t moves + 1 combine per low dim
	// (2Q-2+r total); high phase runs Q-1+Q wavefront iterations at 2 steps
	// each plus the return rotation.
	for r := 1; r <= 3; r++ {
		s, _ := New[uint64](r)
		copy(s.State(), randomInit(s.Top.N, 7))
		s.Ascend(minOp)
		Q := s.Top.Q
		wantLow := 2*(Q-1) + r
		wf := Q - 1 + Q
		wantHigh := 2*wf + mod(-wf, Q)
		if got := s.Steps(); got != wantLow+wantHigh {
			t.Errorf("r=%d: steps = %d, want %d (low %d + high %d)", r, got, wantLow+wantHigh, wantLow, wantHigh)
		}
	}
}

func TestResetCounters(t *testing.T) {
	s, _ := New[uint64](1)
	s.Ascend(minOp)
	if s.Steps() == 0 {
		t.Fatal("no steps counted")
	}
	s.ResetCounters()
	if s.Steps() != 0 || s.RotationSteps != 0 || s.CombineSteps != 0 {
		t.Fatal("counters not reset")
	}
}

func TestBadRangePanics(t *testing.T) {
	s, _ := New[uint64](1)
	for _, rg := range [][2]int{{-1, 2}, {0, s.Dim + 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", rg)
				}
			}()
			s.AscendRange(rg[0], rg[1], minOp)
		}()
	}
}

func TestNewRejectsBadR(t *testing.T) {
	if _, err := New[uint64](0); err == nil {
		t.Fatal("New(0) succeeded")
	}
}

func TestMinReductionOnCCC(t *testing.T) {
	// End-to-end semantic check: a full ascend with min leaves the global
	// minimum everywhere.
	s, _ := New[uint64](2)
	init := randomInit(s.Top.N, 9)
	var want uint64 = 1 << 62
	for _, v := range init {
		if v < want {
			want = v
		}
	}
	copy(s.State(), init)
	s.Ascend(minOp)
	for i, v := range s.State() {
		if v != want {
			t.Fatalf("PE %d = %d, want %d", i, v, want)
		}
	}
}

func BenchmarkCCCAscend(b *testing.B) {
	s, _ := New[uint64](3)
	init := randomInit(s.Top.N, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s.State(), init)
		s.Ascend(minOp)
	}
}

func BenchmarkHypercubeAscendSameSize(b *testing.B) {
	m := hypercube.New[uint64](11) // 2048 PEs, same as CCC r=3
	init := randomInit(m.N, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(m.State(), init)
		m.Ascend(minOp)
	}
}
