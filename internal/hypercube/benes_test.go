package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkRoute(t *testing.T, dim int, dest []int) {
	t.Helper()
	n := 1 << dim
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(1000 + i)
	}
	out, stageCount, err := RoutePermutation(dim, values, dest)
	if err != nil {
		t.Fatal(err)
	}
	if stageCount != 2*dim-1 {
		t.Fatalf("dim %d: %d stages, want %d", dim, stageCount, 2*dim-1)
	}
	for i := range values {
		if out[dest[i]] != values[i] {
			t.Fatalf("dim %d: element from %d should be at %d, found %d there",
				dim, i, dest[i], out[dest[i]])
		}
	}
}

func TestBenesIdentityAndReversal(t *testing.T) {
	for dim := 1; dim <= 6; dim++ {
		n := 1 << dim
		id := make([]int, n)
		rev := make([]int, n)
		for i := range id {
			id[i] = i
			rev[i] = n - 1 - i
		}
		checkRoute(t, dim, id)
		checkRoute(t, dim, rev)
	}
}

func TestBenesRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		dim := rng.Intn(7) + 1
		dest := rng.Perm(1 << dim)
		checkRoute(t, dim, dest)
	}
}

func TestBenesLargeMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkRoute(t, 11, rng.Perm(1<<11)) // 2048 PEs, the CCC r=3 size
}

// Property: arbitrary permutations derived from random swap sequences route
// correctly.
func TestPropertyBenesRoutes(t *testing.T) {
	f := func(seed int64, dim8 uint8) bool {
		dim := int(dim8)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		dest := rng.Perm(1 << dim)
		values := make([]uint64, 1<<dim)
		for i := range values {
			values[i] = uint64(i * 3)
		}
		out, _, err := RoutePermutation(dim, values, dest)
		if err != nil {
			return false
		}
		for i := range values {
			if out[dest[i]] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBenesRejectsBadDest(t *testing.T) {
	if _, err := BenesControlBits(2, []int{0, 1, 2}); err == nil {
		t.Error("short dest accepted")
	}
	if _, err := BenesControlBits(2, []int{0, 1, 2, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := BenesControlBits(2, []int{0, 1, 2, 7}); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if _, _, err := RoutePermutation(2, make([]uint64, 3), []int{0, 1, 2, 3}); err == nil {
		t.Error("short values accepted")
	}
}

// TestBenesStagesAreConsistent: every stage's swap bits agree across partner
// pairs (a switch has one setting, not two).
func TestBenesStagesAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		dim := rng.Intn(5) + 2
		stages, err := BenesControlBits(dim, rng.Perm(1<<dim))
		if err != nil {
			t.Fatal(err)
		}
		for si, st := range stages {
			for pe := range st.Swap {
				if st.Swap[pe] != st.Swap[pe^1<<uint(st.Dim)] {
					t.Fatalf("trial %d stage %d: inconsistent switch at PE %d", trial, si, pe)
				}
			}
		}
	}
}

func BenchmarkBenesRoute2048(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	dest := rng.Perm(1 << 11)
	values := make([]uint64, 1<<11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RoutePermutation(11, values, dest); err != nil {
			b.Fatal(err)
		}
	}
}
