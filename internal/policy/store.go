package policy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Store is the versioned in-memory policy registry. Reads — the per-step
// hot path — are lock-free: lookups load an immutable snapshot through an
// atomic pointer and touch a per-entry atomic recency clock. Writers
// (Publish, eviction) serialize on a mutex and install a fresh snapshot by
// copy-on-write, so a reader never observes a map mid-mutation.
//
// Resident bytes are bounded by a budget (serve wires its -policy-bytes
// flag here, accounted alongside the solve cache's cache_bytes); when a
// publish would exceed it, least-recently-used artifacts are evicted.
// Evicted versions disappear atomically: cursors bound to them fail lookup
// and the session must restart on a resident version.
type Store struct {
	budget int64
	clock  atomic.Int64
	mu     sync.Mutex // guards publish/evict; snapshot swaps are atomic
	snap   atomic.Pointer[snapshot]
}

type snapshot struct {
	byKey map[uint64]*entry   // sealed key → artifact (cursor lookups)
	byID  map[string][]*entry // id → resident versions, ascending
	total int64
}

type entry struct {
	art  *Artifact
	used atomic.Int64 // logical-clock recency stamp
}

// NewStore creates a store bounded to budget resident bytes; budget <= 0
// means unbounded.
func NewStore(budget int64) *Store {
	s := &Store{budget: budget}
	s.snap.Store(&snapshot{byKey: map[uint64]*entry{}, byID: map[string][]*entry{}})
	return s
}

// Publish seals an artifact (assigning the next version for its ID),
// registers it, and evicts LRU artifacts as needed to respect the byte
// budget. The artifact must come from Compile and must not be mutated
// afterwards. Returns the sealed artifact (same pointer) for convenience.
func (s *Store) Publish(art *Artifact) (*Artifact, error) {
	if art == nil || art.ID == "" {
		return nil, fmt.Errorf("policy: cannot publish a nil or unnamed artifact")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.snap.Load()
	art.Version = 1
	if vs := old.byID[art.ID]; len(vs) > 0 {
		art.Version = vs[len(vs)-1].art.Version + 1
	}
	if _, err := art.seal(); err != nil {
		return nil, err
	}
	if s.budget > 0 && art.bytes > s.budget {
		return nil, fmt.Errorf("policy: artifact of %d bytes exceeds the %d-byte policy budget", art.bytes, s.budget)
	}
	e := &entry{art: art}
	e.used.Store(s.clock.Add(1))
	next := cloneSnapshot(old)
	if dup, ok := next.byKey[art.Key()]; ok {
		// Identical sealed bytes (same id, version, content) — e.g. the same
		// version re-published after its successor was evicted. Idempotent.
		if dup.art.ID == art.ID && dup.art.Version == art.Version {
			dup.used.Store(s.clock.Add(1))
			return dup.art, nil
		}
		return nil, fmt.Errorf("policy: artifact key collision on publish")
	}
	next.byKey[art.Key()] = e
	next.byID[art.ID] = append(append([]*entry(nil), next.byID[art.ID]...), e)
	next.total += art.bytes
	if s.budget > 0 {
		s.evictLocked(next, e)
	}
	s.snap.Store(next)
	return art, nil
}

// evictLocked drops least-recently-used entries (never keep, the one just
// published) until total fits the budget. Caller holds s.mu and owns next.
func (s *Store) evictLocked(next *snapshot, keep *entry) {
	for next.total > s.budget {
		var victim *entry
		for _, e := range next.byKey {
			if e == keep {
				continue
			}
			if victim == nil || e.used.Load() < victim.used.Load() {
				victim = e
			}
		}
		if victim == nil {
			return // only the fresh publish remains; budget check passed above
		}
		delete(next.byKey, victim.art.Key())
		vs := next.byID[victim.art.ID]
		kept := vs[:0:0]
		for _, e := range vs {
			if e != victim {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(next.byID, victim.art.ID)
		} else {
			next.byID[victim.art.ID] = kept
		}
		next.total -= victim.art.bytes
	}
}

func cloneSnapshot(old *snapshot) *snapshot {
	next := &snapshot{
		byKey: make(map[uint64]*entry, len(old.byKey)+1),
		byID:  make(map[string][]*entry, len(old.byID)+1),
		total: old.total,
	}
	for k, e := range old.byKey {
		next.byKey[k] = e
	}
	for id, vs := range old.byID {
		next.byID[id] = vs
	}
	return next
}

// ByKey resolves a cursor's artifact key to its artifact: one atomic
// snapshot load, one map lookup, one recency stamp. Lock-free.
func (s *Store) ByKey(key uint64) (*Artifact, bool) {
	e, ok := s.snap.Load().byKey[key]
	if !ok {
		return nil, false
	}
	e.used.Store(s.clock.Add(1))
	return e.art, true
}

// Get resolves a policy id to a resident artifact: the given version, or
// the latest resident one when version is 0.
func (s *Store) Get(id string, version uint32) (*Artifact, bool) {
	vs := s.snap.Load().byID[id]
	if len(vs) == 0 {
		return nil, false
	}
	var e *entry
	if version == 0 {
		e = vs[len(vs)-1]
	} else {
		for _, cand := range vs {
			if cand.art.Version == version {
				e = cand
				break
			}
		}
		if e == nil {
			return nil, false
		}
	}
	e.used.Store(s.clock.Add(1))
	return e.art, true
}

// Info describes one resident artifact for stats and listings.
type Info struct {
	ID      string `json:"policy"`
	Version uint32 `json:"version"`
	K       int    `json:"k"`
	Cost    uint64 `json:"cost"`
	Nodes   int    `json:"nodes"`
	Bytes   int64  `json:"bytes"`
}

// List returns all resident artifacts, ordered by id then version.
func (s *Store) List() []Info {
	snap := s.snap.Load()
	out := make([]Info, 0, len(snap.byKey))
	for _, e := range snap.byKey {
		a := e.art
		out = append(out, Info{ID: a.ID, Version: a.Version, K: a.K, Cost: a.Cost, Nodes: len(a.Nodes), Bytes: a.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// Stats returns the resident artifact count and byte total.
func (s *Store) Stats() (count int, bytes int64) {
	snap := s.snap.Load()
	return len(snap.byKey), snap.total
}
