package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"

	"repro/internal/approx"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/instio"
)

// POST /v1/solve/batch: solve several related instances in one request,
// amortizing the exponential enumeration across instances that share a subset
// lattice (same K, same per-index (Set, Treatment) after canonicalization —
// the "re-priced" workloads of the paper's applications: yesterday's
// diagnosis instance under today's prevalences, the same breakdown structure
// under new repair quotes).
//
// The handler admits every instance individually under the same K/action
// budget as /v1/solve, serves cache hits without solving, groups the misses
// by an order-normalized lattice hash, and runs each group through
// core.SolveBatchCtx — one Gosper sweep, re-priced per instance. Every
// instance's answer is certified independently before it enters the shared
// LRU (the same certify-before-cache contract as /v1/solve); an instance
// whose group solve or certification fails falls back to the per-instance
// resilient path rather than failing the batch. Batch solves bypass the
// singleflight map (the group itself is the coalescing mechanism) but
// populate the same cache, so follow-up /v1/solve requests for any member
// hit.
//
// Admission accounting: one batch request occupies one solver slot (and one
// MaxPending unit) for its whole duration — the group sweep already
// parallelizes internally over the stripe pool, so letting each group grab
// its own slot would double-count the same CPUs.

// BatchItem is one instance's slice of the /v1/solve/batch reply.
type BatchItem struct {
	InstanceHash string  `json:"instance_hash"`
	Cached       bool    `json:"cached"`              // served from the LRU without solving
	Group        int     `json:"group"`               // shared-lattice group index; -1 when cached or solved alone
	SolvedBy     string  `json:"solved_by,omitempty"` // "batch", or the fallback engine
	Adequate     bool    `json:"adequate"`
	Cost         *uint64 `json:"cost,omitempty"`
	FirstAction  string  `json:"first_action,omitempty"`
	Tree         string  `json:"tree,omitempty"`
	Error        string  `json:"error,omitempty"` // this instance failed; the others are unaffected
}

// BatchResponse is the /v1/solve/batch reply.
type BatchResponse struct {
	Instances   int         `json:"instances"`
	Groups      int         `json:"groups"`       // shared-lattice groups actually batch-solved
	Repriced    int         `json:"repriced"`     // instances that rode another instance's enumeration
	CacheHits   int         `json:"cache_hits"`   //
	Fallbacks   int         `json:"fallbacks"`    // instances solved per-instance after a group/certify failure
	CertifyMode string      `json:"certify_mode"` //
	Items       []BatchItem `json:"items"`
	ElapsedMS   float64     `json:"elapsed_ms"`
}

// latticeKey fingerprints the subset lattice of a *canonicalized* instance:
// K plus the per-index (Set, Treatment) sequence. Canonicalize sorts actions
// by (Set, Treatment) first, so the sequence — and hence the key — is
// invariant under the costs, weights, names, and original action order;
// equal keys imply core.SameLattice on the canonical forms.
func latticeKey(canon *core.Problem) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(canon.K))
	buf[8] = 0
	h.Write(buf[:])
	for _, a := range canon.Actions {
		binary.LittleEndian.PutUint64(buf[:8], uint64(a.Set))
		buf[8] = 0
		if a.Treatment {
			buf[8] = 1
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// acquire takes one admission unit (MaxPending) and one solver slot; the
// returned release must be called exactly once. It is the batch-path
// equivalent of runSolve's inline accounting.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if s.pending.Add(1) > int64(s.cfg.MaxPending) {
		s.pending.Add(-1)
		return nil, errBusy
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, ctx.Err()
	}
	return func() {
		<-s.sem
		s.pending.Add(-1)
	}, nil
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		s.rejectShed(w, true)
		return
	}
	q := r.URL.Query()
	mode := s.certifyMode
	if cm := q.Get("certify"); cm != "" {
		var err error
		if mode, err = certify.ParseMode(cm); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	timeout := s.cfg.DefaultTimeout
	if ms := q.Get("timeout_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "timeout_ms must be a positive integer")
			return
		}
		timeout = min(time.Duration(n)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ps, err := instio.ReadBatch(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(ps) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(ps) > s.cfg.MaxBatch {
		s.metrics.RejectOversize.Add(1)
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("%v: %d instances > max batch %d", errOversize, len(ps), s.cfg.MaxBatch))
		return
	}
	for i, p := range ps {
		if oerr := s.admit(p, "seq"); oerr != nil {
			// Structured like the solo 422, naming the offending member.
			// The batch path is exact-only (shared-lattice re-pricing has
			// no approximate variant), so no approx hint is offered here.
			s.metrics.RejectOversize.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, &oversizeBody{
				Error:  fmt.Sprintf("batch instance %d: %v", i, oerr),
				Budget: oerr.budget, Limit: oerr.limit, Got: oerr.got,
			})
			return
		}
	}
	s.metrics.BatchRequests.Add(1)
	start := time.Now()

	items := make([]BatchItem, len(ps))
	canons := make([]*core.Problem, len(ps))
	resp := &BatchResponse{Instances: len(ps), CertifyMode: mode.String(), Items: items}

	// Cache pass: canonicalize, hash, and serve hits without taking a slot.
	misses := make([]int, 0, len(ps))
	for i, p := range ps {
		canon := Canonicalize(p)
		hash, err := Hash(canon)
		if err != nil {
			s.metrics.Failures.Add(1)
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		canons[i] = canon
		items[i] = BatchItem{InstanceHash: hash, Group: -1}
		s.mu.Lock()
		ent := s.cache.get(hash + "|" + mode.String())
		s.mu.Unlock()
		if ent != nil {
			s.metrics.CacheHits.Add(1)
			resp.CacheHits++
			s.fillItem(&items[i], ent, true, isTrue(q.Get("tree")))
			continue
		}
		s.metrics.CacheMisses.Add(1)
		misses = append(misses, i)
	}

	if len(misses) > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		release, err := s.acquire(ctx)
		if err != nil {
			s.solveError(w, err)
			return
		}
		defer release()

		// Group the misses by lattice fingerprint, preserving request order
		// within each group.
		groupOf := make(map[uint64]int)
		var groups [][]int
		for _, i := range misses {
			k := latticeKey(canons[i])
			gi, ok := groupOf[k]
			if !ok {
				gi = len(groups)
				groupOf[k] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], i)
		}
		resp.Groups = len(groups)
		for gi, idxs := range groups {
			resp.Repriced += s.solveBatchGroup(ctx, gi, idxs, canons, items, mode, isTrue(q.Get("tree")))
		}
		for _, i := range misses {
			if items[i].SolvedBy != "" && items[i].SolvedBy != "batch" {
				resp.Fallbacks++
			}
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// solveBatchGroup solves one shared-lattice group with the enumerate-once
// sweep, certifies and caches each instance's answer independently, and
// falls back to the per-instance resilient path for any instance the group
// could not deliver. It returns the number of instances that were priced by
// riding the group's shared enumeration (group size − 1 on success, 0 when
// the whole group fell back).
func (s *Server) solveBatchGroup(ctx context.Context, gi int, idxs []int, canons []*core.Problem, items []BatchItem, mode certify.Mode, wantTree bool) (repriced int) {
	group := make([]*core.Problem, len(idxs))
	for j, i := range idxs {
		group[j] = canons[i]
	}
	s.metrics.Solves.Add(1)
	gStart := time.Now()
	sols, err := core.SolveBatchCtx(ctx, group, s.cfg.Workers, s.stripe)
	s.metrics.observe("batch", time.Since(gStart))
	if err != nil {
		s.log.Warn("batch group failed, falling back per instance", "group", gi, "size", len(idxs), "err", err)
		s.metrics.EngineFailures.Add(1)
		for _, i := range idxs {
			s.solveBatchFallback(ctx, i, canons[i], items, mode, wantTree)
		}
		return 0
	}
	s.metrics.BatchGroups.Add(1)
	if n := len(idxs) - 1; n > 0 {
		s.metrics.BatchRepriced.Add(int64(n))
		repriced = n
	}
	for j, i := range idxs {
		sol := sols[j]
		ent, err := s.certifyBatchAnswer(canons[i], items[i].InstanceHash, sol, mode)
		sol.Release()
		if err != nil {
			s.log.Warn("batch answer refused, falling back", "group", gi, "instance", i, "err", err)
			s.solveBatchFallback(ctx, i, canons[i], items, mode, wantTree)
			continue
		}
		s.mu.Lock()
		s.cache.add(ent)
		s.mu.Unlock()
		items[i].Group = gi
		s.fillItem(&items[i], ent, false, wantTree)
	}
	return repriced
}

// certifyBatchAnswer turns one instance's batch solution into a certified
// cache entry: tree reconstruction from the cost plane, then the same
// engine-independent certifier gate every /v1/solve answer passes before it
// can be cached. The caller releases sol.
func (s *Server) certifyBatchAnswer(canon *core.Problem, hash string, sol *core.Solution, mode certify.Mode) (*cacheEntry, error) {
	ent := &cacheEntry{engine: "batch", cost: sol.Cost, adequate: sol.Adequate(),
		canon: canon, hash: hash, key: hash + "|" + mode.String()}
	if ent.adequate {
		tree, err := core.TreeFromCosts(canon, sol.C)
		if err != nil {
			return nil, err
		}
		ent.tree = tree
	}
	if mode != certify.ModeOff {
		rep := certify.Check(canon, sol.Cost, ent.tree, sol.C, nil, mode, certifySeed(hash))
		if !rep.OK() {
			s.metrics.CertifyFail.Add(1)
			return nil, fmt.Errorf("serve: batch answer refused: %w", rep.Err())
		}
		s.metrics.CertifyPass.Add(1)
	}
	ent.bytes = entryBytes(ent)
	return ent, nil
}

// solveBatchFallback solves one instance through the normal resilient chain
// (engine "seq") after its group could not deliver a certified answer, and
// records the outcome — success or error — on its batch item.
func (s *Server) solveBatchFallback(ctx context.Context, i int, canon *core.Problem, items []BatchItem, mode certify.Mode, wantTree bool) {
	s.metrics.BatchFallback.Add(1)
	ent, err := s.solveResilient(ctx, items[i].InstanceHash, canon, "seq", mode, approx.Spec{Raw: "off"})
	if err != nil {
		items[i].Error = err.Error()
		return
	}
	s.mu.Lock()
	s.cache.add(ent)
	s.mu.Unlock()
	s.fillItem(&items[i], ent, false, wantTree)
}

// fillItem copies a cache entry's answer onto a batch item.
func (s *Server) fillItem(it *BatchItem, ent *cacheEntry, cached, wantTree bool) {
	it.Cached = cached
	it.SolvedBy = ent.engine
	it.Adequate = ent.adequate
	if ent.adequate {
		cost := ent.cost
		it.Cost = &cost
	}
	if ent.tree != nil {
		it.FirstAction = actionName(ent.canon, ent.tree.Action)
		if wantTree {
			it.Tree = ent.tree.Render(ent.canon)
		}
	}
}
