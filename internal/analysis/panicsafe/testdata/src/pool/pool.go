// Seeded true positives and near-miss negatives for the panicsafe analyzer,
// shaped like the repo's SolveParallel worker pools.
package pool

import (
	"fmt"
	"sync"
)

func work(j int) {}

// True positive: the PR 3 shape — pooled workers with wg.Done but no recover;
// a panicking worker either crashes the process or strands wg.Wait forever.
func badPool(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // want "no deferred recover"
			defer wg.Done()
			for j := range jobs {
				work(j)
			}
		}()
	}
	wg.Wait()
}

// True positive: a named worker function without a recover is no better.
func namedPool(jobs chan int) {
	for i := 0; i < 2; i++ {
		go drain(jobs) // want "pooled goroutine drain has no deferred recover"
	}
}

func drain(jobs chan int) {
	for range jobs {
	}
}

// True positive: range-launched workers are pools too.
func rangePool(shards []chan int) {
	for _, ch := range shards {
		ch := ch
		go func() { // want "no deferred recover"
			for j := range ch {
				work(j)
			}
		}()
	}
}

// Negative: the fixed shape — recover reports into the pool's error channel.
func goodPool(jobs chan int, errs chan error) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case errs <- fmt.Errorf("worker panic: %v", r):
					default:
					}
				}
			}()
			for j := range jobs {
				work(j)
			}
		}()
	}
	wg.Wait()
}

// Negative: deferring a named recovering helper is equivalent.
func helperPool(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer reportPanic()
			for j := range jobs {
				work(j)
			}
		}()
	}
	wg.Wait()
}

func reportPanic() {
	if r := recover(); r != nil {
		_ = r
	}
}

// Near-miss negative: the SolveParallel shape — the worker's whole loop body
// delegates to a locally-bound closure that installs the recover, so every
// unit of work is shielded even though the goroutine literal has no defer
// recover of its own.
func delegatingPool(jobs chan int, errs chan error) {
	runUnit := func(j int) {
		defer func() {
			if r := recover(); r != nil {
				select {
				case errs <- fmt.Errorf("unit panic: %v", r):
				default:
				}
			}
		}()
		work(j)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				runUnit(j)
			}
		}()
	}
	wg.Wait()
}

// Near-miss negative: a lone goroutine outside any loop is not a pool; the
// single-waiter patterns around it are out of scope.
func loneGoroutine(done chan error, run func() error) {
	go func() {
		done <- run()
	}()
}
