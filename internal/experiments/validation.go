package experiments

import (
	"fmt"
	"time"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmtt"
	"repro/internal/core"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

// CrossValidation is experiment E13: every solver implementation — the
// sequential DP, its memoized twin, the word-level parallel algorithm on all
// three engines, and the instruction-level BVM program — must agree exactly
// on C(U) across the workload suite.
func CrossValidation() (*Table, error) {
	t := &Table{
		ID:         "E13",
		Title:      "solver cross-validation (exact agreement on C(U))",
		PaperClaim: "the ASCEND transformation and the BVM realization compute the DP recurrence exactly",
		Header: []string{"workload", "k", "N", "C(U)", "memo", "lockstep",
			"goroutine", "ccc", "bvm"},
	}
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"figure-1", Fig1Problem()},
		{"medical", workload.MedicalDiagnosis(1, 4)},
		{"fault-location", workload.FaultLocation(2, 4, 2)},
		{"biology", workload.SystematicBiology(3, 4)},
		{"laboratory", workload.LaboratoryAnalysis(5, 4)},
		{"logistics", workload.Logistics(6, 4, 2)},
		{"binary-testing", workload.BinaryTestingUniform(4, 40)},
		{"random", workload.Random(4, 4, 3, 2)},
	}
	for _, c := range cases {
		seq, err := core.Solve(c.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		memo, err := core.SolveMemo(c.p)
		if err != nil {
			return nil, err
		}
		lock, err := parttsolve.Solve(c.p, parttsolve.Lockstep)
		if err != nil {
			return nil, err
		}
		gor, err := parttsolve.Solve(c.p, parttsolve.Goroutine)
		if err != nil {
			return nil, err
		}
		cc, err := parttsolve.Solve(c.p, parttsolve.CCC)
		if err != nil {
			return nil, err
		}
		bv, err := bvmtt.Solve(c.p, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.p.K, len(c.p.Actions), seq.Cost,
			agree(memo == seq.Cost), agree(lock.Cost == seq.Cost),
			agree(gor.Cost == seq.Cost), agree(cc.Cost == seq.Cost),
			agree(bv.Cost == seq.Cost))
	}
	t.Notes = append(t.Notes,
		"the test suite additionally checks the full C(S) plane, not just C(U), on random instances")
	return t, nil
}

func agree(ok bool) string {
	if ok {
		return "="
	}
	return "MISMATCH"
}

// GreedyGap is experiment E14: the optimality gap of the binary-testing-
// style greedy against the exact DP across the domain workloads.
func GreedyGap() (*Table, error) {
	t := &Table{
		ID:         "E14",
		Title:      "optimal DP vs greedy heuristic",
		PaperClaim: "(context) the TT problem is NP-hard, so practice uses heuristics; the DP quantifies their gap",
		Header:     []string{"workload", "k", "optimal C(U)", "greedy", "gap %"},
	}
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"medical-8", workload.MedicalDiagnosis(10, 8)},
		{"medical-12", workload.MedicalDiagnosis(11, 12)},
		{"fault-10", workload.FaultLocation(12, 10, 5)},
		{"fault-14", workload.FaultLocation(13, 14, 7)},
		{"biology-10", workload.SystematicBiology(14, 10)},
		{"biology-13", workload.SystematicBiology(15, 13)},
		{"laboratory-10", workload.LaboratoryAnalysis(17, 10)},
		{"logistics-12", workload.Logistics(18, 12, 4)},
		{"binary-16", workload.BinaryTestingUniform(16, 60)},
		{"random-12", workload.Random(16, 12, 10, 6)},
	}
	for _, c := range cases {
		sol, err := core.Solve(c.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		g, err := core.GreedyCost(c.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		gap := 100 * (float64(g) - float64(sol.Cost)) / float64(sol.Cost)
		t.AddRow(c.name, c.p.K, sol.Cost, g, fmt.Sprintf("%.1f", gap))
	}
	return t, nil
}

// AblationGather is ablation A1: the paper's e-loop broadcast versus an
// idealized shared-memory gather that fetches M[S−T_i, i] in one step. The
// e-loop pays a factor ~k in steps but needs only the 3 links per PE the
// CCC provides; the ideal gather would need arbitrary point-to-point wiring.
func AblationGather() (*Table, error) {
	t := &Table{
		ID:         "A1",
		Title:      "e-loop broadcast vs idealized one-step gather",
		PaperClaim: "the ASCEND transformation makes the gather feasible on a 3-link machine (§6)",
		Header:     []string{"k", "logN", "e-loop dim-steps", "ideal-gather steps", "overhead"},
	}
	for _, k := range []int{4, 8, 12} {
		logN := parttsolve.PaddedLogN(k * k / 2)
		eloop := parttsolve.ExpectedDimSteps(k, logN)
		// Ideal machine: per round one gather for R, one for Q, one combine,
		// logN min steps; plus one p(S) step.
		ideal := 1 + k*(3+logN)
		t.AddRow(k, logN, eloop, ideal, fmt.Sprintf("%.2f", float64(eloop)/float64(ideal)))
	}
	t.Notes = append(t.Notes,
		"the overhead factor is Θ(k/ log N): the price of running on 3p/2 links instead of a full crossbar")
	return t, nil
}

// AblationControlBits is ablation A3: generating the group-activation
// control bits on the fly (the paper's propagation of the first kind) versus
// streaming precomputed popcount planes in through the input chain.
func AblationControlBits() (*Table, error) {
	t := &Table{
		ID:         "A3",
		Title:      "control bits on the fly vs precomputed input streaming",
		PaperClaim: "generating control bits on the fly saves precalculation time and runtime storage (§4)",
		Header: []string{"machine", "k", "on-the-fly instr (total)",
			"streamed instr (total)", "streamed regs"},
	}
	for _, r := range []int{2, 3} {
		m, err := bvm.New(r, bvm.DefaultRegisters)
		if err != nil {
			return nil, err
		}
		k := m.Top.AddrBits - 2 // leave 2 bits of action index
		logN := 2

		// On the fly: k rounds of a k-dim mark propagation (1-bit payload).
		// R(4) stands in for an address-bit plane; only the instruction count
		// matters here, and it is data-independent.
		m.SetConst(bvm.R(4), true)
		m.ResetCounters()
		mark, rcv, cond, cond2 := bvm.R(0), bvm.R(1), bvm.R(2), bvm.R(3)
		pair := []bvmalg.Pair{{Src: mark, Shadow: cond2}}
		for j := 1; j <= k; j++ {
			m.SetConst(rcv, false)
			for e := 0; e < k; e++ {
				bvmalg.FetchPartner(m, logN+e, pair, 10)
				m.And(cond, cond2, bvm.Loc(bvm.R(4)))
				m.Or(rcv, rcv, bvm.Loc(cond))
			}
			m.Mov(mark, bvm.Loc(rcv))
		}
		fly := m.InstrCount

		// Streamed: one precomputed popcount plane per round, each costing n
		// input-chain instructions, and k+1 registers of runtime storage.
		streamed := int64((k + 1) * m.N())
		t.AddRow(fmt.Sprintf("r=%d (%d PEs)", r, m.N()), k, fly, streamed, k+1)
	}
	t.Notes = append(t.Notes,
		"on large machines the input chain is the bottleneck: streaming costs Θ(k·n) instructions vs Θ(k^2·Q) on the fly")
	return t, nil
}

// AblationEngines is ablation A4: wall-clock comparison of the lockstep
// vectorized executor against one-goroutine-per-PE on the same instance.
func AblationEngines() (*Table, error) {
	t := &Table{
		ID:         "A4",
		Title:      "lockstep vectorized PEs vs goroutine-per-PE (host wall clock)",
		PaperClaim: "(implementation study; machine-dependent timings)",
		Header:     []string{"k", "PEs", "lockstep", "goroutines", "ratio"},
	}
	for _, k := range []int{4, 6, 8} {
		p := workload.Random(int64(k), k, 4, 3)
		start := time.Now()
		if _, err := parttsolve.Solve(p, parttsolve.Lockstep); err != nil {
			return nil, err
		}
		lock := time.Since(start)
		start = time.Now()
		res, err := parttsolve.Solve(p, parttsolve.Goroutine)
		if err != nil {
			return nil, err
		}
		gor := time.Since(start)
		t.AddRow(k, res.PEs, lock.Round(time.Microsecond), gor.Round(time.Microsecond),
			fmt.Sprintf("%.1f", float64(gor)/float64(lock)))
	}
	t.Notes = append(t.Notes,
		"goroutine PEs validate correctness under true asynchrony; the lockstep engine is the measurement vehicle")
	return t, nil
}
