// Package certify is a miniature stand-in for the repo's answer certifier:
// certorder matches it by package name, so this fake exercises exactly the
// code paths the real one does.
package certify

// Mode selects how much certification runs.
type Mode int

// Modes, mirroring the real package.
const (
	ModeOff Mode = iota
	ModeFast
	ModeAudit
)

// Report is a certification verdict.
type Report struct{ ok bool }

// OK reports whether the answer passed.
func (r Report) OK() bool { return r.ok }

// Check certifies a solve cost.
func Check(cost uint64) Report { return Report{ok: cost < 1<<40} }

// VerifyEntry certifies a cache entry payload.
func VerifyEntry(cost uint64, hash string) Report { return Report{ok: hash != ""} }

// GapCert is a gap-certification verdict.
type GapCert struct{ ok bool }

// OK reports whether the gap claim held.
func (c GapCert) OK() bool { return c.ok }

// CertifyGap certifies an approximate answer's suboptimality claim.
func CertifyGap(cost, gapMilli, lb uint64) GapCert { return GapCert{ok: cost*1000 <= gapMilli*lb} }

// CheckInadequate certifies an inadequacy claim by its coverage witness.
func CheckInadequate(k int) Report { return Report{ok: k >= 0} }

// LowerBound derives a bound on the optimum; deriving is not certifying.
func LowerBound(k int) uint64 { return uint64(k) }

// ParseMode parses a mode name; it is not a certifying call.
func ParseMode(s string) Mode {
	if s == "off" {
		return ModeOff
	}
	return ModeFast
}
