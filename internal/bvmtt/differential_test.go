package bvmtt_test

import (
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmtt"
	"repro/internal/workload"
)

// TestRecordedRunKernelVsReference records a complete §6 test-and-treatment
// run and replays it on two fresh machines — one on the word-parallel kernel
// path, one on the scalar reference path — demanding bit-identical final
// architectural state and identical instruction/route counters. This is the
// end-to-end guarantee that the route kernels, cached activation masks, and
// Apply3 fast paths change nothing but speed.
func TestRecordedRunKernelVsReference(t *testing.T) {
	p := workload.SystematicBiology(3, 3)
	res, err := bvmtt.SolveRecorded(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program == nil {
		t.Fatal("SolveRecorded returned no program")
	}

	fast, err := bvm.New(res.MachineR, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bvm.New(res.MachineR, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetReferenceExec(true)

	res.Program.Replay(fast)
	res.Program.Replay(ref)

	if !fast.Snapshot().Equal(ref.Snapshot()) {
		t.Fatal("kernel replay state differs from reference replay")
	}
	if fast.InstrCount != ref.InstrCount {
		t.Fatalf("InstrCount: kernel %d, reference %d", fast.InstrCount, ref.InstrCount)
	}
	fc, rc := fast.RouteCount(), ref.RouteCount()
	if len(fc) != len(rc) {
		t.Fatalf("route count maps differ: %v vs %v", fc, rc)
	}
	for r, n := range rc {
		if fc[r] != n {
			t.Fatalf("RouteCount[%v]: kernel %d, reference %d", r, fc[r], n)
		}
	}
	if fast.InstrCount != res.Instructions {
		t.Fatalf("replay executed %d instructions, original run %d", fast.InstrCount, res.Instructions)
	}
	if len(fast.Output) != len(ref.Output) {
		t.Fatal("output streams differ in length")
	}
	for i := range fast.Output {
		if fast.Output[i] != ref.Output[i] {
			t.Fatalf("output bit %d differs between kernel and reference", i)
		}
	}
}
