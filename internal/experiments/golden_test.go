package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden figure files")

// TestFiguresMatchGolden pins the complete rendered output of every
// deterministic figure reproduction against checked-in golden files.
// Regenerate with: go test ./internal/experiments -run Golden -update-golden
func TestFiguresMatchGolden(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (string, error)
	}{
		{"fig1", Fig1Tree},
		{"fig2", func() (string, error) { return Fig2Layout(2) }},
		{"fig3", Fig3CycleID},
		{"fig4-5", Fig45ProcessorID},
		{"fig6", Fig6Broadcast},
		{"fig7", Fig7AscendMin},
		{"fig8-9", Fig89RBroadcast},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output changed; diff against %s or regenerate with -update-golden\ngot:\n%s",
					c.name, path, got)
			}
		})
	}
}

// TestDesignIndexCoversAllExperiments keeps DESIGN.md's experiment index in
// lockstep with the harness: every runnable experiment must be documented.
func TestDesignIndexCoversAllExperiments(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	design := string(data)
	for _, e := range All() {
		if !strings.Contains(design, "| "+e.ID+" |") && !strings.Contains(design, "**"+e.ID+"**") {
			t.Errorf("experiment %s (%s) missing from DESIGN.md", e.ID, e.Name)
		}
	}
}
