package ccc

import (
	"testing"
	"testing/quick"
)

func TestNewSizes(t *testing.T) {
	cases := []struct {
		r, q, cycles, n, addrBits int
	}{
		{1, 2, 4, 8, 3},
		{2, 4, 16, 64, 6},
		{3, 8, 256, 2048, 11},
		{4, 16, 65536, 1 << 20, 20},
	}
	for _, c := range cases {
		top, err := New(c.r)
		if err != nil {
			t.Fatalf("New(%d): %v", c.r, err)
		}
		if top.Q != c.q || top.Cycles != c.cycles || top.N != c.n || top.AddrBits != c.addrBits {
			t.Errorf("New(%d) = %+v, want Q=%d Cycles=%d N=%d AddrBits=%d",
				c.r, top, c.q, c.cycles, c.n, c.addrBits)
		}
	}
}

func TestNewRejectsBadR(t *testing.T) {
	for _, r := range []int{0, -1, MaxR + 1} {
		if _, err := New(r); err == nil {
			t.Errorf("New(%d) succeeded, want error", r)
		}
	}
}

func TestForPEs(t *testing.T) {
	cases := []struct{ want, n int }{
		{8, 1}, {8, 8}, {64, 9}, {64, 64}, {2048, 65}, {2048, 2048}, {1 << 20, 2049},
	}
	for _, c := range cases {
		top, err := ForPEs(c.n)
		if err != nil {
			t.Fatalf("ForPEs(%d): %v", c.n, err)
		}
		if top.N != c.want {
			t.Errorf("ForPEs(%d).N = %d, want %d", c.n, top.N, c.want)
		}
	}
	if _, err := ForPEs(1<<20 + 1); err == nil {
		t.Error("ForPEs beyond MaxR succeeded, want error")
	}
}

func TestAddrSplitRoundTrip(t *testing.T) {
	top, _ := New(2)
	for c := 0; c < top.Cycles; c++ {
		for p := 0; p < top.Q; p++ {
			a := top.Addr(c, p)
			gc, gp := top.Split(a)
			if gc != c || gp != p {
				t.Fatalf("Split(Addr(%d,%d)) = (%d,%d)", c, p, gc, gp)
			}
		}
	}
	// Paper §2 example encoding: PE 2^r·i + j.
	if got := top.Addr(3, 1); got != 3*4+1 {
		t.Errorf("Addr(3,1) = %d, want 13", got)
	}
}

func TestCycleNeighbors(t *testing.T) {
	top, _ := New(2) // Q=4
	a := top.Addr(5, 3)
	if got := top.Succ(a); got != top.Addr(5, 0) {
		t.Errorf("Succ wraps wrong: %d", got)
	}
	if got := top.Pred(top.Addr(5, 0)); got != top.Addr(5, 3) {
		t.Errorf("Pred wraps wrong: %d", got)
	}
	if got := top.Succ(top.Addr(5, 1)); got != top.Addr(5, 2) {
		t.Errorf("Succ(5,1) = %d", got)
	}
}

func TestLateral(t *testing.T) {
	top, _ := New(2)
	// PE (cycle 5=0101, pos 1) is laterally connected to cycle 5 XOR 2 = 7.
	if got := top.Lateral(top.Addr(5, 1)); got != top.Addr(7, 1) {
		t.Errorf("Lateral(5,1) = %d, want (7,1)=%d", got, top.Addr(7, 1))
	}
	// Lateral is an involution everywhere.
	for a := 0; a < top.N; a++ {
		if top.Lateral(top.Lateral(a)) != a {
			t.Fatalf("Lateral not involutory at %d", a)
		}
	}
}

func TestXSXP(t *testing.T) {
	top, _ := New(2) // Q=4
	// XS pairs (0,1) and (2,3).
	for p, want := range []int{1, 0, 3, 2} {
		if got := top.XS(top.Addr(9, p)); got != top.Addr(9, want) {
			t.Errorf("XS pos %d = pos %d, want %d", p, got&3, want)
		}
	}
	// XP: predecessor for even positions, successor for odd — pairs (1,2), (3,0).
	for p, want := range []int{3, 2, 1, 0} {
		if got := top.XP(top.Addr(9, p)); got != top.Addr(9, want) {
			t.Errorf("XP pos %d = pos %d, want %d", p, got&3, want)
		}
	}
	// Both exchanges are involutions.
	for a := 0; a < top.N; a++ {
		if top.XS(top.XS(a)) != a {
			t.Fatalf("XS not involutory at %d", a)
		}
		if top.XP(top.XP(a)) != a {
			t.Fatalf("XP not involutory at %d", a)
		}
	}
}

func TestIOPrev(t *testing.T) {
	top, _ := New(1)
	if top.IOPrev(0) != -1 {
		t.Error("PE (0,0) should read external input")
	}
	for a := 1; a < top.N; a++ {
		if top.IOPrev(a) != a-1 {
			t.Errorf("IOPrev(%d) = %d", a, top.IOPrev(a))
		}
	}
}

// TestLinkCount verifies the paper's 3n/2 link claim for all Q >= 4 machines
// and that the closed form matches explicit enumeration.
func TestLinkCount(t *testing.T) {
	for r := 1; r <= 3; r++ {
		top, _ := New(r)
		links := top.Links()
		if len(links) != top.LinkCount() {
			t.Errorf("r=%d: enumerated %d links, closed form %d", r, len(links), top.LinkCount())
		}
		if r >= 2 {
			if want := 3 * top.N / 2; top.LinkCount() != want {
				t.Errorf("r=%d: LinkCount = %d, want 3n/2 = %d", r, top.LinkCount(), want)
			}
		}
	}
	// r=4 closed form only (2^20 PEs, enumeration too large for a unit test).
	top, _ := New(4)
	if want := 3 * top.N / 2; top.LinkCount() != want {
		t.Errorf("r=4: LinkCount = %d, want %d", top.LinkCount(), want)
	}
}

func TestHypercubeLinkCount(t *testing.T) {
	// 2^q-node hypercube has q·2^(q-1) edges.
	cases := []struct{ dim, want int }{{3, 12}, {4, 32}, {10, 5120}}
	for _, c := range cases {
		if got := HypercubeLinkCount(c.dim); got != c.want {
			t.Errorf("HypercubeLinkCount(%d) = %d, want %d", c.dim, got, c.want)
		}
	}
}

func TestConnected(t *testing.T) {
	for r := 1; r <= 3; r++ {
		top, _ := New(r)
		if !top.Connected() {
			t.Errorf("r=%d: network not connected", r)
		}
	}
}

func TestDegreeThree(t *testing.T) {
	// Every PE has exactly 3 incident links for Q >= 4 (the paper's "each PE
	// is connected to three other PEs by a one-bit wide path").
	top, _ := New(2)
	deg := make(map[int]int)
	for _, l := range top.Links() {
		deg[l.From]++
		deg[l.To]++
	}
	for a := 0; a < top.N; a++ {
		if deg[a] != 3 {
			t.Fatalf("PE %d has degree %d, want 3", a, deg[a])
		}
	}
}

func TestPermMatchesNeighbor(t *testing.T) {
	top, _ := New(2)
	for _, k := range []NeighborKind{KindSucc, KindPred, KindLateral, KindXS, KindXP} {
		perm := top.Perm(k)
		for a := 0; a < top.N; a++ {
			if int(perm[a]) != top.Neighbor(k, a) {
				t.Fatalf("%v perm[%d] = %d, want %d", k, a, perm[a], top.Neighbor(k, a))
			}
		}
	}
}

func TestNeighborKindString(t *testing.T) {
	want := map[NeighborKind]string{KindSucc: "S", KindPred: "P", KindLateral: "L", KindXS: "XS", KindXP: "XP"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// Property: Succ and Pred are inverse and stay within the cycle.
func TestPropertySuccPredInverse(t *testing.T) {
	top, _ := New(3)
	f := func(seed uint16) bool {
		a := int(seed) % top.N
		if top.Pred(top.Succ(a)) != a || top.Succ(top.Pred(a)) != a {
			return false
		}
		c1, _ := top.Split(a)
		c2, _ := top.Split(top.Succ(a))
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the lateral link connects cycles that differ in exactly the bit
// equal to the in-cycle position, and preserves the position.
func TestPropertyLateralBit(t *testing.T) {
	top, _ := New(3)
	f := func(seed uint16) bool {
		a := int(seed) % top.N
		c, p := top.Split(a)
		lc, lp := top.Split(top.Lateral(a))
		return lp == p && lc^c == 1<<p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinksEnumeration(b *testing.B) {
	top, _ := New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(top.Links()); got != top.LinkCount() {
			b.Fatalf("links %d != %d", got, top.LinkCount())
		}
	}
}

// TestDiameterBound checks the Preparata-Vuillemin diameter bound ~2.5Q.
func TestDiameterBound(t *testing.T) {
	for r := 1; r <= 2; r++ {
		top, _ := New(r)
		d := top.Diameter()
		bound := 5*top.Q/2 + 2
		if d < top.Q || d > bound {
			t.Errorf("r=%d: diameter %d outside [Q=%d, 2.5Q+2=%d]", r, d, top.Q, bound)
		}
	}
}
